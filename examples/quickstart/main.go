// Quickstart: build the Figure-1 network programmatically, state the
// no-transit safety property with its three local invariants (Table 2), and
// verify it with Lightyear's modular checks. Then plant the §2.1 bug and
// show the localized counterexample, and finally run a declarative
// multi-property verification plan — the same request document the CLI
// (-plan) and the lyserve HTTP API (POST /v2/verify) accept.
//
// The plan.Request JSON schema, shared verbatim across CLI, HTTP, and
// library:
//
//	{
//	  "network":    {"generator": {"kind": "wan", "regions": 2}},
//	  "properties": [{"name": "wan-peering", "routers": ["edge-0"]},
//	                 {"name": "wan-ip-reuse"}],
//	  "options":    {"wan_regions": 2}
//	}
//
// Against a running lyserve, submit it and stream per-check progress as
// NDJSON until the final {"type":"plan"} event:
//
//	curl -s localhost:8080/v2/verify -d @plan.json
//	  => {"id":"job-1","status_url":"/v2/jobs/job-1",
//	      "events_url":"/v2/jobs/job-1/events"}
//	curl -sN localhost:8080/v2/jobs/job-1/events
//	  => {"type":"start","prop":0,"problem":"no-bogons@edge-0","total":21}
//	     {"type":"check","prop":0,"property":"wan-peering",...}
//	     ...
//	     {"type":"problem","prop":0,"problem":"no-bogons@edge-0","ok":true,...}
//	     {"type":"property","prop":0,"property":"wan-peering","ok":true,...}
//	     {"type":"plan","ok":true}
//
// # Verifying a deployment
//
// A change rolled out to a live network passes through intermediate states,
// and any one of them can violate a property the endpoints both satisfy.
// A migration plan (internal/migrate) verifies the whole sequence: a
// baseline network, the properties to hold throughout, and ordered steps —
// each either a full replacement config ("config") or a named route-map
// edit ("mutation"). The steps.json schema, accepted verbatim by the CLI
// and (steps only) by the session endpoint:
//
//	{
//	  "network":    {"generator": {"kind": "fig1"}},
//	  "properties": [{"name": "fig1-no-transit"}],
//	  "steps": [
//	    {"label": "shield", "mutation": {"kind": "insert-export-deny",
//	      "from": "R2", "to": "ISP2", "seq": 5, "match": "community:100:1"}},
//	    {"label": "retire", "mutation": {"kind": "remove-export-clause",
//	      "from": "R2", "to": "ISP2", "seq": 10}}
//	  ]
//	}
//
// `lightyear -migrate steps.json` verifies the baseline once, then each
// step as an incremental delta re-solve (only checks touched by the edit
// are re-proven; a comment-only config step solves nothing). Exit status:
// 0 every step verified (or a safe order was found), 1 the plan violated
// at some step k (printed with the failing checks and witness), 2 the
// steps.json was malformed, 3 the walk stopped on an undecided (solver
// budget) step, 4 no safe order exists for an unordered change set. With
// "unordered": true the steps are a change *set*: the walk becomes a
// search that prunes interchangeable orders of independent steps, memoizes
// verified intermediate states, and prints the safe order it found — or
// why none exists.
//
// Against lyserve the same steps run inside a pinned session — the session
// supplies the network and properties, so the body carries only the steps —
// and the walk streams back as NDJSON, one event per state:
//
//	curl -s localhost:8080/v2/sessions -d '{
//	  "network": {"generator": {"kind": "fig1"}},
//	  "properties": [{"name": "fig1-no-transit"}]}'
//	  => {"id":"session-1",...}
//	curl -sN localhost:8080/v2/sessions/session-1/migrate -d @steps.json
//	  => {"type":"baseline","step":-1,"ok":true,"reused":22,...}
//	     {"type":"step_started","step":0,"label":"shield",...}
//	     {"type":"step_ok","step":0,"label":"shield","checks":22,"dirty":1,...}
//	     {"type":"step_started","step":1,"label":"retire",...}
//	     {"type":"step_ok","step":1,"label":"retire","checks":22,"dirty":1,...}
//	     {"type":"done","ok":true,"result":{...}}
//
// A violating plan streams {"type":"step_violated","step":k,...} plus one
// "check" event per failing check, and the session rolls back to its
// pinned baseline; on success the session re-pins on the migrated state,
// so follow-up /update calls delta against the deployed network. The
// lightyear_migrate_steps{outcome} and lightyear_migrate_reorders counters
// on /metrics, and `lybench -experiment migrate` (BENCH_migrate.json),
// measure the per-step reuse this buys.
//
// # Choosing a solver backend
//
// Every check is a declarative obligation decided by a pluggable solver
// backend (internal/solver). The plan's "solver" execution option selects
// one per request — the engine routes just that request's checks to it, so
// concurrent tenants of one lyserve can use different backends:
//
//	{
//	  "network":    {"generator": {"kind": "wan", "regions": 2}},
//	  "properties": [{"name": "wan-peering"}],
//	  "options":    {"wan_regions": 2,
//	                 "solver": {"backend": "portfolio"}}
//	}
//
// Backends: "native" (one in-process CDCL solve; add "budget": N to cap SAT
// conflicts per check — checks that exceed it report status "unknown"
// rather than a fake failure, and lightyear exits 3 on unknown-only runs),
// "portfolio" (races heuristic variants per check, first verdict wins,
// losers cancelled), and "tiered" (small conflict budget first — "budget"
// overrides the 2048 default — escalating to unlimited on Unknown). The
// same selection is `lightyear -solver portfolio` on the CLI. Submit one
// over HTTP and read the per-backend counters back:
//
//	curl -s localhost:8080/v2/verify -d '{
//	  "network":    {"generator": {"kind": "fig1"}},
//	  "properties": [{"name": "sat-stress"}],
//	  "options":    {"solver": {"backend": "portfolio"}}}'
//	curl -s localhost:8080/v1/stats
//	  => {"engine": {..., "backends": {"portfolio":
//	      {"solved": 24, "raced": 87, "solve_ns": ...}}}, ...}
//
// # Running a solver fleet
//
// The "remote" backend shards those same solves across a fleet of worker
// processes (internal/fabric): the coordinator consistent-hashes each
// check key onto a worker, so a given obligation always lands on the same
// shard and the worker-side cache and dedup keep firing. Start two
// workers, point any coordinator binary at them, and run a suite:
//
//	lyworker -listen :9101 &
//	lyworker -listen :9102 &
//	lightyear -config net.cfg -property sat-stress \
//	    -solver remote:localhost:9101,localhost:9102
//
// lyserve takes the same spec (-solver remote:...) as its default backend,
// and the per-worker view shows where checks actually ran:
//
//	curl -s localhost:8080/v1/stats
//	  => {..., "fabric": {"workers": [
//	        {"addr": "localhost:9101", "healthy": true, "solved": 231, ...},
//	        {"addr": "localhost:9102", "healthy": true, "solved": 213, ...}],
//	      "failovers": 0, "fallbacks": 0}}
//	curl -s localhost:9101/v1/status          # the worker's own counters
//
// Fleets degrade instead of failing: killing a worker trips its circuit
// breaker after a few failed solves, its keys re-shard to the remaining
// workers with bounded-backoff retries, and an empty or exhausted pool
// falls back to the local backend — verdicts stay ok/fail/unknown-correct
// throughout, and each solve's result records which worker and backend
// decided it ("remote(localhost:9101)/native"). `lybench -experiment
// shard` measures the scaling story (BENCH_shard.json).
//
// # Tenancy and admission
//
// Every submission runs as a tenant, and the engine sheds load at the door
// instead of queueing unboundedly. Over HTTP the tenant comes from the
// X-Tenant header (or ?tenant=, or the plan's "tenant" option), and a
// server started with admission limits —
//
//	lyserve -max-inflight 2000 -tenant-quota 800
//
// — admits each plan as one unit (its compiled check count): a request
// that does not fit is answered 429 with a Retry-After header and a typed
// body, nothing enqueued:
//
//	curl -s -D- -H 'X-Tenant: acme' localhost:8080/v2/verify -d @big-plan.json
//	  => HTTP/1.1 429 Too Many Requests
//	     Retry-After: 12
//	     {"error": "admission rejected for tenant \"acme\": cost 5200 over
//	      engine in-flight limit 2000 (retry after 12s)", "tenant": "acme",
//	      "cost": 5200, "limit": 2000, "retry_after_ms": 12000}
//
// Retry after the hint (or with a smaller plan) and the request is
// admitted; GET /v1/stats reports per-tenant admitted/rejected/queued/
// in-flight counters, and admitted work is dispatched weighted-fair across
// tenants, so one tenant flooding the service cannot starve another. In
// the library the same contract is engine.Submit with a Workload (step 7
// below): rejections are the typed *engine.ErrAdmission.
//
// # Observability
//
// Wire a telemetry.Recorder into engine.Options and every layer records
// into it: counters and histograms for the Prometheus exposition, and a
// span tree per workload (step 8 below). Against a running lyserve the
// same data is one curl away:
//
//	curl -s localhost:8080/metrics | grep lightyear_checks_solved
//	  => lightyear_checks_solved_total{backend="native",status="ok"} 1643
//	TRACE=$(curl -sD- localhost:8080/v2/verify -d @plan.json \
//	          | sed -n 's/^X-Trace-Id: //Ip' | tr -d '\r')
//	curl -s localhost:8080/v1/traces/$TRACE     # span tree, JSON
//
// Every NDJSON event of the run carries the same "trace_id", so a slow
// property in a stream is one GET away from its per-problem timing
// breakdown. The CLI equivalent is `lightyear -trace` (tree on stderr);
// `lybench -out FILE.json` persists throughput and latency quantiles —
// the committed BENCH_*.json files track that trajectory.
//
// Both binaries log through one structured logger: `-log-level
// debug|info|warn|error` and `-log-format text|json` (lightyear defaults
// to text, lyserve to json), every line tagged with its component and,
// where it applies, tenant, job, and trace_id — so `lyserve -log-format
// json` yields a stream a log pipeline can join against traces.
//
// # Reading solver provenance
//
// Every solved check records how hard the CDCL search worked, not just how
// long it took. A check's JSON (v1/v2 reports, `lightyear -json`) carries a
// "solver" object whenever genuine search ran:
//
//	{"kind": "implication", "status": "ok", "num_vars": 72, "num_cons": 310,
//	 "num_terms": 913,
//	 "solver": {"conflicts": 57, "decisions": 71, "propagations": 812,
//	            "restarts": 0, "learned": 49}}
//
// The same counters aggregate per job ("stats":{"solver":...}), per backend
// (GET /v1/stats and /v1/status), on the job's solve span as trace
// attributes, and as the lightyear_conflicts_per_check /
// lightyear_clauses_per_check histograms on /metrics. Checks exceeding the
// server's -slow-conflicts / -slow-solve thresholds — and every check left
// "unknown" — are logged with the full counter set (step 9 below reads the
// provenance in the library).
//
// # Health and status endpoints
//
// lyserve answers the three probes an orchestrator or dashboard needs:
//
//	curl -s localhost:8080/healthz    # liveness: process serves HTTP
//	  => {"status":"ok"}
//	curl -s localhost:8080/readyz     # readiness: component probes
//	  => {"ready":true,"components":{"store":{"ok":true},
//	      "dispatcher":{"ok":true},"admission":{"ok":true},
//	      "suites":{"ok":true}}}
//	curl -s localhost:8080/v1/status  # the one-document rollup
//
// /readyz probes the store journal's directory for writability (with
// -store), the engine dispatcher, admission-queue saturation, and the suite
// registry; any failure answers 503 naming the failing components.
// /v1/status rolls up uptime, build identity, the same readiness probes,
// engine/tenant/backend stats (solver depth included), job and session
// counts, and trace-ring occupancy. On SIGINT/SIGTERM the server drains
// gracefully: in-flight requests get -shutdown-grace, event streams flush,
// the engine drains, and the store journal closes.
//
// # The scenario corpus
//
// A corpus member reference names a whole reproducible test scenario —
// topology family, seed, knobs, and optionally a planted bug with ground
// truth — so "the network the bug was found on" is a string, not a file:
//
//	lightyear -corpus ring:42                        # clean member, verify
//	lightyear -corpus waxman:7:size=12,bug=no-bogons # planted bug, graded
//	  => corpus: planted no-bogons on session px-r3-0 -> r3:
//	     DETECTED (4 failing problems)
//	lightyear -corpus list                           # families, knobs, bugs
//	lightyear -corpus zoo:1:graph=abilene -corpus-emit  # print the config DSL
//
// The same reference is a plan network source, so lyserve verifies corpus
// members over HTTP ({"network": {"corpus": "tree:3:depth=3,fanout=2"}}),
// and `lybench -experiment corpus` sweeps the ≥30-member default roster —
// every member bugged, asserting 100% detection with zero mislocalized
// failures — into BENCH_corpus.json (step 10 below does one member in the
// library).
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"lightyear/internal/core"
	"lightyear/internal/corpus"
	"lightyear/internal/engine"
	"lightyear/internal/netgen"
	"lightyear/internal/plan"
	"lightyear/internal/policy"
	"lightyear/internal/routemodel"
	"lightyear/internal/spec"
	"lightyear/internal/telemetry"
	"lightyear/internal/topology"
)

func main() {
	// 1. Build a network: three routers in one AS, two ISPs, one customer.
	// (netgen.Fig1 builds the same network; spelled out here for the tour.)
	n := topology.New()
	n.AddRouter("R1", 65000)
	n.AddRouter("R2", 65000)
	n.AddRouter("R3", 65000)
	n.AddExternal("ISP1", 174)
	n.AddExternal("ISP2", 3356)
	n.AddExternal("Customer", 64512)
	n.AddPeering("ISP1", "R1")
	n.AddPeering("ISP2", "R2")
	n.AddPeering("Customer", "R3")
	n.AddPeering("R1", "R2")
	n.AddPeering("R1", "R3")
	n.AddPeering("R2", "R3")

	transit := routemodel.MustCommunity("100:1")

	// R1 tags everything learned from ISP1 with 100:1.
	n.SetImport(topology.Edge{From: "ISP1", To: "R1"}, &policy.RouteMap{
		Name: "r1-import-isp1",
		Clauses: []policy.Clause{
			{Seq: 10, Actions: []policy.Action{policy.AddCommunity{Comm: transit}}, Permit: true},
		},
	})
	// R2 drops tagged routes towards ISP2.
	n.SetExport(topology.Edge{From: "R2", To: "ISP2"}, &policy.RouteMap{
		Name: "r2-export-isp2",
		Clauses: []policy.Clause{
			{Seq: 10, Matches: []spec.Pred{spec.HasCommunity(transit)}, Permit: false},
			{Seq: 20, Permit: true},
		},
	})

	// 2. Define the ghost attribute FromISP1 (§4.4) and the property.
	fromISP1 := core.GhostFromExternals("FromISP1", n, func(id topology.NodeID) bool {
		return id == "ISP1"
	})
	exit := topology.Edge{From: "R2", To: "ISP2"}

	// 3. Three local invariants (Table 2): external edges are unconstrained
	// automatically; the exit edge forbids FromISP1; everywhere else the
	// key invariant says FromISP1 routes carry 100:1.
	inv := core.NewInvariants(spec.Implies(spec.Ghost("FromISP1"), spec.HasCommunity(transit)))
	inv.SetEdge(exit, spec.Not(spec.Ghost("FromISP1")))

	problem := &core.SafetyProblem{
		Network: n,
		Property: core.Property{
			Loc:  core.AtEdge(exit),
			Pred: spec.Not(spec.Ghost("FromISP1")),
			Desc: "no transit: ISP1 routes never reach ISP2",
		},
		Invariants: inv,
		Ghosts:     []core.GhostDef{fromISP1},
	}

	// 4. Verify: one local check per filter, one implication check.
	rep := core.VerifySafety(problem, core.Options{})
	fmt.Print(rep.Summary())
	fmt.Printf("(%d checks, largest check: %d SAT variables)\n\n", rep.NumChecks(), rep.MaxVars())

	// 5. Plant the §2.1 bug — R1 forgets to tag — and watch Lightyear
	// localize it to the exact filter with a concrete counterexample.
	buggy := netgen.Fig1(netgen.Fig1Options{OmitTransitTag: true})
	rep = core.VerifySafety(netgen.Fig1NoTransitProblem(buggy), core.Options{})
	fmt.Println("after removing the tag action at R1:")
	fmt.Print(rep.Summary())

	// 6. The declarative plan API: several properties — here scoped to a
	// router subset — verified as one request on one shared engine, so
	// checks shared across properties are solved once. This is the exact
	// document `lightyear -plan` and lyserve's POST /v2/verify accept.
	res, err := plan.Execute(plan.Request{
		Network: plan.Network{Generator: &netgen.GeneratorSpec{Kind: "wan", Regions: 2,
			RoutersPerRegion: 1, EdgeRouters: 1, PeersPerEdge: 2}},
		Properties: []plan.Property{
			{Name: "wan-peering", Routers: []topology.NodeID{netgen.EdgeRouter(0)}},
			{Name: "wan-ip-reuse"},
		},
		Options: plan.Options{WANRegions: 2},
	}, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nplan: ok=%v across %d properties\n", res.OK, len(res.Properties))
	for _, pr := range res.Properties {
		fmt.Printf("  %-13s %d problems, %d checks, %d cache hits, %d dedup hits\n",
			pr.Property.Name, len(pr.Problems), pr.Stats.Checks, pr.Stats.CacheHits, pr.Stats.DedupHits)
	}
	fmt.Printf("engine: %d checks submitted, %d solved\n",
		res.Engine.ChecksSubmitted, res.Engine.ChecksSolved)

	// 7. Tenancy and admission control: the engine's one submission entry
	// point is a typed Workload — who is submitting (Tenant), how urgent
	// (Priority), how big (Cost, defaulting to the check count) — and
	// Options.Admission sheds over-limit work with a typed error carrying a
	// retry hint, before anything enters the shared queue.
	cost := len(problem.Checks(core.Options{}))
	eng := engine.New(engine.Options{
		// Room for exactly one copy of the problem per tenant.
		Admission: engine.Admission{MaxInFlightChecks: 2 * cost, PerTenantQuota: cost},
	})
	defer eng.Close()
	job, err := eng.Submit(context.Background(), engine.Workload{
		Safety: problem, Tenant: "acme", Priority: 1,
	})
	if err != nil {
		panic(err)
	}
	// A second workload while acme's first is still in flight would exceed
	// the quota: the engine rejects it instead of queueing it.
	_, err = eng.Submit(context.Background(), engine.Workload{Safety: problem, Tenant: "acme"})
	var adm *engine.ErrAdmission
	if errors.As(err, &adm) {
		fmt.Printf("\nadmission: tenant %q cost %d rejected over limit %d (retry after %v)\n",
			adm.Tenant, adm.Cost, adm.Limit, adm.RetryAfter.Round(time.Millisecond))
	}
	job.Wait()
	ts := eng.Stats().Tenants["acme"]
	fmt.Printf("tenant acme: %d admitted, %d rejected (lyserve maps this rejection to HTTP 429 + Retry-After)\n",
		ts.Admitted, ts.Rejected)

	// 8. Observability: thread a telemetry.Recorder through engine.Options
	// (nil costs nothing) and the run leaves behind Prometheus-style series
	// plus a span tree. Re-registering a metric by name returns the live
	// family, so reading a counter back is the same call that created it;
	// lyserve serves the whole recorder at GET /metrics and GET /v1/traces.
	rec := telemetry.New(0)
	teng := engine.New(engine.Options{Telemetry: rec})
	defer teng.Close()
	compiled, err := plan.Compile(plan.Request{
		Network: plan.Network{Generator: &netgen.GeneratorSpec{Kind: "wan", Regions: 2,
			RoutersPerRegion: 1, EdgeRouters: 1, PeersPerEdge: 2}},
		Properties: []plan.Property{{Name: "wan-peering", Routers: []topology.NodeID{netgen.EdgeRouter(0)}}},
		Options:    plan.Options{WANRegions: 2},
	}, nil)
	if err != nil {
		panic(err)
	}
	tres, err := plan.Run(teng, compiled, plan.RunConfig{})
	if err != nil {
		panic(err)
	}
	solved := rec.Counter("lightyear_checks_solved_total", "", "backend", "status").With("native", "ok")
	solveP99 := rec.Histogram("lightyear_solve_seconds", "", nil, "backend").Quantile(0.99)
	fmt.Printf("\ntelemetry: %d checks solved ok, solve p99 %.2gs, trace %s:\n",
		solved.Value(), solveP99, tres.TraceID)
	if snap, ok := rec.Trace(tres.TraceID); ok {
		snap.WriteTree(os.Stdout)
	}

	// 9. Solver provenance: every CheckResult records the depth of the CDCL
	// search that decided it. Route-map checks are decided by propagation
	// alone (all-zero SolveStats); the sat-stress pigeonhole obligations
	// force genuine search, so their implication check shows non-zero depth
	// — the same counters /v1/status, the /metrics histograms, and the
	// slow-check log surface in production.
	sj, err := teng.Submit(context.Background(), engine.Workload{
		Safety: netgen.StressProblem(netgen.Fig1(netgen.Fig1Options{}), 4),
	})
	if err != nil {
		panic(err)
	}
	for _, r := range sj.Wait().Results {
		if r.Solver.Conflicts == 0 {
			continue // decided by unit propagation alone
		}
		fmt.Printf("\nprovenance %q:\n  %d conflicts, %d decisions, %d learned clauses, %d restarts (%d vars, %d clauses, %d terms)\n",
			r.Desc, r.Solver.Conflicts, r.Solver.Decisions, r.Solver.Learned,
			r.Solver.Restarts, r.NumVars, r.NumCons, r.NumTerms)
	}

	// 10. The scenario corpus: a member reference is a reproducible test
	// network, and a planted bug comes with machine-checkable ground truth
	// — which session was mutated, which property must fail, which must
	// keep passing. Build the member once to read the ground truth, then
	// verify it through the ordinary plan path (the reference itself is
	// the network source) and grade the run against it.
	member, err := corpus.Parse("waxman:7:size=12,degree=3,bug=no-bogons")
	if err != nil {
		panic(err)
	}
	_, gt, err := member.Build()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ncorpus %s: planted %s on session %s -> %s\n",
		member.Ref(), gt.Property, gt.Mutation.From, gt.Mutation.To)
	cres, err := plan.Execute(plan.Request{
		Network:    plan.Network{Corpus: member.Ref()},
		Properties: []plan.Property{{Name: corpus.PropertySuite}},
	}, nil)
	if err != nil {
		panic(err)
	}
	detected, unexpected := 0, 0
	for _, pr := range cres.Properties {
		for _, prob := range pr.Problems {
			switch {
			case prob.OK:
			case strings.HasPrefix(prob.Name, gt.Property+"@"):
				detected++
			default:
				unexpected++
			}
		}
	}
	fmt.Printf("corpus: %d failing problems of the planted property, %d mislocalized — detection %v\n",
		detected, unexpected, detected > 0 && unexpected == 0)
}
