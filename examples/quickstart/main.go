// Quickstart: build the Figure-1 network programmatically, state the
// no-transit safety property with its three local invariants (Table 2), and
// verify it with Lightyear's modular checks. Then plant the §2.1 bug and
// show the localized counterexample.
package main

import (
	"fmt"

	"lightyear/internal/core"
	"lightyear/internal/netgen"
	"lightyear/internal/policy"
	"lightyear/internal/routemodel"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

func main() {
	// 1. Build a network: three routers in one AS, two ISPs, one customer.
	// (netgen.Fig1 builds the same network; spelled out here for the tour.)
	n := topology.New()
	n.AddRouter("R1", 65000)
	n.AddRouter("R2", 65000)
	n.AddRouter("R3", 65000)
	n.AddExternal("ISP1", 174)
	n.AddExternal("ISP2", 3356)
	n.AddExternal("Customer", 64512)
	n.AddPeering("ISP1", "R1")
	n.AddPeering("ISP2", "R2")
	n.AddPeering("Customer", "R3")
	n.AddPeering("R1", "R2")
	n.AddPeering("R1", "R3")
	n.AddPeering("R2", "R3")

	transit := routemodel.MustCommunity("100:1")

	// R1 tags everything learned from ISP1 with 100:1.
	n.SetImport(topology.Edge{From: "ISP1", To: "R1"}, &policy.RouteMap{
		Name: "r1-import-isp1",
		Clauses: []policy.Clause{
			{Seq: 10, Actions: []policy.Action{policy.AddCommunity{Comm: transit}}, Permit: true},
		},
	})
	// R2 drops tagged routes towards ISP2.
	n.SetExport(topology.Edge{From: "R2", To: "ISP2"}, &policy.RouteMap{
		Name: "r2-export-isp2",
		Clauses: []policy.Clause{
			{Seq: 10, Matches: []spec.Pred{spec.HasCommunity(transit)}, Permit: false},
			{Seq: 20, Permit: true},
		},
	})

	// 2. Define the ghost attribute FromISP1 (§4.4) and the property.
	fromISP1 := core.GhostFromExternals("FromISP1", n, func(id topology.NodeID) bool {
		return id == "ISP1"
	})
	exit := topology.Edge{From: "R2", To: "ISP2"}

	// 3. Three local invariants (Table 2): external edges are unconstrained
	// automatically; the exit edge forbids FromISP1; everywhere else the
	// key invariant says FromISP1 routes carry 100:1.
	inv := core.NewInvariants(spec.Implies(spec.Ghost("FromISP1"), spec.HasCommunity(transit)))
	inv.SetEdge(exit, spec.Not(spec.Ghost("FromISP1")))

	problem := &core.SafetyProblem{
		Network: n,
		Property: core.Property{
			Loc:  core.AtEdge(exit),
			Pred: spec.Not(spec.Ghost("FromISP1")),
			Desc: "no transit: ISP1 routes never reach ISP2",
		},
		Invariants: inv,
		Ghosts:     []core.GhostDef{fromISP1},
	}

	// 4. Verify: one local check per filter, one implication check.
	rep := core.VerifySafety(problem, core.Options{})
	fmt.Print(rep.Summary())
	fmt.Printf("(%d checks, largest check: %d SAT variables)\n\n", rep.NumChecks(), rep.MaxVars())

	// 5. Plant the §2.1 bug — R1 forgets to tag — and watch Lightyear
	// localize it to the exact filter with a concrete counterexample.
	buggy := netgen.Fig1(netgen.Fig1Options{OmitTransitTag: true})
	rep = core.VerifySafety(netgen.Fig1NoTransitProblem(buggy), core.Options{})
	fmt.Println("after removing the tag action at R1:")
	fmt.Print(rep.Summary())
}
