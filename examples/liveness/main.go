// Liveness: verify the Table-3 property on the Figure-1 network — a route
// with a customer prefix received from Customer is eventually advertised to
// ISP2 — using a witness path, per-step constraints, propagation checks,
// and no-interference obligations (§5). Afterwards the same property is
// confirmed dynamically by the BGP trace simulator.
package main

import (
	"fmt"

	"lightyear/internal/core"
	"lightyear/internal/netgen"
	"lightyear/internal/routemodel"
	"lightyear/internal/sim"
	"lightyear/internal/topology"
)

func main() {
	n := netgen.Fig1(netgen.Fig1Options{})
	problem := netgen.Fig1LivenessProblem(n)

	fmt.Println("witness path and constraints (Table 3):")
	for i, s := range problem.Steps {
		fmt.Printf("  C%d @ %-16s %s\n", i+1, s.Loc, s.Constraint)
	}
	fmt.Println()

	rep, err := core.VerifyLiveness(problem, core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Print(rep.Summary())

	var prop, interf int
	for _, r := range rep.Results {
		switch r.Kind {
		case core.PropagationCheck:
			prop++
		case core.InterferenceCheck:
			interf++
		}
	}
	fmt.Printf("(%d propagation checks along the path, %d no-interference sub-checks)\n\n", prop, interf)

	// Dynamic confirmation: simulate the network; the customer route must
	// be forwarded to ISP2 even while ISP1 floods competing announcements.
	s := sim.New(n, []core.GhostDef{netgen.FromISP1Ghost(n)})
	cust := routemodel.NewRoute(routemodel.MustPrefix("10.42.1.0/24"))
	cust.ASPath = []uint32{64512}
	s.Announce(topology.Edge{From: "Customer", To: "R3"}, cust)
	noise := routemodel.NewRoute(routemodel.MustPrefix("10.42.1.0/24"))
	noise.ASPath = []uint32{174, 64512}
	s.Announce(topology.Edge{From: "ISP1", To: "R1"}, noise) // interference attempt
	trace := s.Run(10000)

	reached := trace.SatisfiesLiveness(core.AtEdge(topology.Edge{From: "R2", To: "ISP2"}), netgen.HasCustPrefix())
	fmt.Printf("simulation: customer prefix forwarded to ISP2 = %v (%d trace events)\n", reached, len(trace.Events))
}
