// WAN bogon filtering: the Table-4a scenario. Build a synthetic wide-area
// network (regions, edge routers, Internet peers), verify the eleven
// peering properties of §6.1 at a core router, then inject the
// "inconsistent edge filter" bug the paper reports and show the localized
// finding.
package main

import (
	"fmt"
	"time"

	"lightyear/internal/core"
	"lightyear/internal/netgen"
)

func main() {
	params := netgen.WANParams{
		Regions:          4,
		RoutersPerRegion: 3,
		EdgeRouters:      3,
		DCsPerRegion:     1,
		PeersPerEdge:     3,
	}
	n := netgen.WAN(params, netgen.WANBugs{})
	fmt.Printf("WAN: %d routers, %d externals, %d directed BGP sessions\n\n",
		len(n.Routers()), len(n.Externals()), n.NumEdges())

	at := netgen.RegionRouter(0, 0)
	fmt.Printf("verifying 11 peering properties at %s (FromPeer(r) => Q(r)):\n", at)
	for _, prop := range netgen.PeeringProperties(params.Regions) {
		t0 := time.Now()
		rep := core.VerifySafety(netgen.PeeringProblem(n, at, prop), core.Options{})
		fmt.Printf("  %-26s OK=%-5v checks=%-3d %v\n", prop.Name, rep.OK(), rep.NumChecks(), time.Since(t0).Round(time.Millisecond))
	}

	fmt.Println("\ninjecting the bug: one peering session missing its bogon clause")
	buggy := netgen.WAN(params, netgen.WANBugs{MissingBogonFilter: true})
	rep := core.VerifySafety(netgen.PeeringProblem(buggy, at, netgen.PeeringProperties(params.Regions)[0]), core.Options{})
	fmt.Print(rep.Summary())
	fmt.Println("note: the failure names the exact session and shows a bogon route it admits —")
	fmt.Println("the localization benefit of modular checking (no global counterexample to dissect).")
}
