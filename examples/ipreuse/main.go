// IP reuse: the Table-4b/4c scenario. Private IPv4 space is reused across
// regions; region communities keep reused routes inside their region. This
// example verifies the safety side (reused routes never escape their
// region) and the liveness side (reused routes do propagate within their
// region), then shows the metadata bug the paper found — a router tagging
// with the wrong region's community.
package main

import (
	"fmt"

	"lightyear/internal/core"
	"lightyear/internal/netgen"
)

func main() {
	params := netgen.DefaultWANParams()
	n := netgen.WAN(params, netgen.WANBugs{})
	fmt.Printf("WAN: %d regions, reused space %s, region communities", params.Regions, "10.128.0.0/9")
	for r := 0; r < params.Regions; r++ {
		fmt.Printf(" %s", netgen.RegionComm(r))
	}
	fmt.Println()

	fmt.Println("\nTable 4b — safety: reused prefixes never leave their region")
	for r := 0; r < params.Regions; r++ {
		outside := netgen.RegionRouter((r+1)%params.Regions, 0)
		rep := core.VerifySafety(netgen.IPReuseSafetyProblem(n, params, r, outside), core.Options{})
		fmt.Printf("  region %d (observer %s): OK=%v (%d checks)\n", r, outside, rep.OK(), rep.NumChecks())
	}

	fmt.Println("\nTable 4c — liveness: reused routes reach the region's other routers")
	for r := 0; r < params.Regions; r++ {
		rep, err := core.VerifyLiveness(netgen.IPReuseLivenessProblem(n, params, r), core.Options{})
		if err != nil {
			panic(err)
		}
		fmt.Printf("  region %d (path DC -> %s -> %s): OK=%v\n",
			r, netgen.RegionRouter(r, 0), netgen.RegionRouter(r, 1), rep.OK())
	}

	fmt.Println("\ninjecting the metadata bug: region 0 tags reused routes with region 1's community")
	buggy := netgen.WAN(params, netgen.WANBugs{WrongRegionCommunity: true})
	rep := core.VerifySafety(netgen.IPReuseSafetyProblem(buggy, params, 0, netgen.RegionRouter(1, 0)), core.Options{})
	fmt.Print(rep.Summary())
	lrep, err := core.VerifyLiveness(netgen.IPReuseLivenessProblem(buggy, params, 0), core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("liveness for region 0 with the bug: OK=%v (traffic could be redirected, as the paper's operators confirmed)\n", lrep.OK())
}
