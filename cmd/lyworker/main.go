// Command lyworker is one shard of the distributed solver fabric: a
// long-lived process that accepts serialized obligations over HTTP
// (POST /v1/solve), decides them with a local solver backend, and reports
// liveness (/healthz) and cumulative counters (/v1/status). Coordinators
// (plan, lightyear, lyserve, lybench with -solver remote:...) shard work
// across a fleet of these by consistent-hashing on check keys.
//
// Usage:
//
//	lyworker -listen :9101 [-solver tiered:256] [-max-concurrent 8]
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lightyear/internal/fabric"
	"lightyear/internal/logging"
	"lightyear/internal/solver"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("lyworker", flag.ExitOnError)
	listen := fs.String("listen", ":9101", "address to serve on (host:port)")
	solverFlag := fs.String("solver", "native", "local backend deciding received obligations: backend[:budget]")
	name := fs.String("name", "", "worker self-label in responses (default: listen address)")
	maxConc := fs.Int("max-concurrent", 0, "max simultaneous solves; excess requests get 503 (default GOMAXPROCS)")
	grace := fs.Duration("shutdown-grace", 5*time.Second, "drain window on SIGTERM/SIGINT")
	var logCfg logging.Config
	logCfg.RegisterFlags(fs, "json")
	fs.Parse(os.Args[1:])

	logger, err := logCfg.Build(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	log := logging.Component(logger, "lyworker")

	spec, err := solver.ParseSpec(*solverFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if spec.Backend == solver.RemoteName {
		fmt.Fprintln(os.Stderr, "lyworker: -solver remote would chain workers; pick a local backend")
		return 2
	}
	backend, err := solver.New(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	label := *name
	if label == "" {
		label = *listen
	}
	srv := fabric.NewServer(fabric.ServerOptions{
		Backend:       backend,
		Name:          label,
		MaxConcurrent: *maxConc,
		Logger:        log,
	})

	httpSrv := &http.Server{Addr: *listen, Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	log.Info("worker up", "listen", *listen, "backend", backend.Name(), "name", label)
	select {
	case err := <-errCh:
		log.Error("serve failed", "err", err)
		return 1
	case s := <-sig:
		log.Info("shutting down", "signal", s.String())
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Warn("drain incomplete", "err", err)
		}
	}
	return 0
}
