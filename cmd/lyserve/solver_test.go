package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"lightyear/internal/engine"
)

// waitDoneV2 polls the v2 snapshot until the job completes.
func waitDoneV2(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v2/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var j map[string]any
		err = json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if j["status"] == "done" {
			return j
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not complete in time", id)
	return nil
}

// TestV2SolverBackendAndStats: the request's solver option routes the job to
// the portfolio backend, the per-property stats say so, and /v1/stats
// exposes the per-backend counters.
func TestV2SolverBackendAndStats(t *testing.T) {
	ts := newTestServer(t)
	_, accepted := postJSON(t, ts.URL+"/v2/verify", `{
		"network": {"generator": {"kind": "fig1"}},
		"properties": [{"name": "sat-stress"}],
		"options": {"solver": {"backend": "portfolio"}}
	}`)
	id, _ := accepted["id"].(string)
	if id == "" {
		t.Fatalf("no job id: %+v", accepted)
	}
	job := waitDoneV2(t, ts, id)
	if ok, _ := job["ok"].(bool); !ok {
		t.Fatalf("stress plan not ok: %+v", job)
	}
	props := job["properties"].([]any)
	stats := props[0].(map[string]any)["stats"].(map[string]any)
	if stats["backend"] != "portfolio" {
		t.Fatalf("property stats backend = %v, want portfolio", stats["backend"])
	}
	if raced, _ := stats["raced"].(float64); raced == 0 {
		t.Fatalf("no racing recorded: %+v", stats)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Engine engine.Stats `json:"engine"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	bs, ok := st.Engine.Backends["portfolio"]
	if !ok || bs.Solved == 0 || bs.Raced == 0 {
		t.Fatalf("/v1/stats backend counters: %+v", st.Engine.Backends)
	}
}

// TestV2UnknownStatusOverHTTP: a starved conflict budget yields per-check
// "unknown" status in the job's reports — visibly distinct from "fail".
func TestV2UnknownStatusOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	_, accepted := postJSON(t, ts.URL+"/v2/verify", `{
		"network": {"generator": {"kind": "fig1"}},
		"properties": [{"name": "sat-stress"}],
		"options": {"solver": {"backend": "native", "budget": 1}}
	}`)
	id, _ := accepted["id"].(string)
	job := waitDoneV2(t, ts, id)
	if ok, _ := job["ok"].(bool); ok {
		t.Fatal("budget-starved job reported ok")
	}
	props := job["properties"].([]any)
	problems := props[0].(map[string]any)["problems"].([]any)
	unknown, failed := 0, 0
	for _, pb := range problems {
		rep, _ := pb.(map[string]any)["report"].(map[string]any)
		if rep == nil {
			t.Fatalf("problem without report: %+v", pb)
		}
		unknown += int(rep["num_unknown"].(float64))
		failed += int(rep["num_failed"].(float64))
	}
	if unknown == 0 || failed != 0 {
		t.Fatalf("num_unknown=%d num_failed=%d, want >0 and 0", unknown, failed)
	}

	// An unknown backend name is a 400, not a wedged job.
	resp, body := postJSON(t, ts.URL+"/v2/verify", `{
		"network": {"generator": {"kind": "fig1"}},
		"properties": [{"name": "sat-stress"}],
		"options": {"solver": {"backend": "bogus"}}
	}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown backend = %d (%v), want 400", resp.StatusCode, body)
	}
}

// TestEventWindowTruncation: with a small -event-window, a late subscriber
// receives one truncation marker followed by only the retained suffix,
// ending with the plan event.
func TestEventWindowTruncation(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 4})
	t.Cleanup(eng.Close)
	srv := newServer(eng)
	srv.eventWindow = 8
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)

	_, accepted := postJSON(t, ts.URL+"/v2/verify",
		`{"network": {"generator": {"kind": "fig1"}}, "properties": [{"name": "fig1-no-transit"}]}`)
	id := accepted["id"].(string)
	waitDoneV2(t, ts, id)

	resp, err := http.Get(ts.URL + "/v2/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []map[string]any
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON %q: %v", sc.Text(), err)
		}
		lines = append(lines, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// fig1-no-transit emits well over 8 events (one per check plus
	// start/problem/property/plan), so the history must have been truncated.
	if len(lines) != 9 { // marker + 8 retained events
		t.Fatalf("got %d events, want 9 (truncated marker + window)", len(lines))
	}
	first := lines[0]
	if first["type"] != "truncated" {
		t.Fatalf("first event = %+v, want the truncated marker", first)
	}
	if dropped, _ := first["dropped"].(float64); dropped == 0 {
		t.Fatalf("truncated marker lacks dropped count: %+v", first)
	}
	last := lines[len(lines)-1]
	if last["type"] != "plan" {
		t.Fatalf("stream did not end with the plan event: %+v", last)
	}
}
