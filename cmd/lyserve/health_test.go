package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"lightyear/internal/engine"
	"lightyear/internal/store"
	"lightyear/internal/telemetry"
)

func getHealthJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode, out
}

// TestHealthAndStatus drives the whole health plane on a live server: the
// liveness and readiness probes answer ok, and after a sat-stress plan
// /v1/status rolls up non-zero solver-depth provenance for the backend that
// ran it, alongside identity, readiness, and trace-ring occupancy.
func TestHealthAndStatus(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 4, Telemetry: telemetry.New(0)})
	t.Cleanup(eng.Close)
	ts := httptest.NewServer(newServer(eng).routes())
	t.Cleanup(ts.Close)

	code, body := getHealthJSON(t, ts.URL+"/healthz")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("GET /healthz = %d %v, want 200 ok", code, body)
	}
	code, body = getHealthJSON(t, ts.URL+"/readyz")
	if code != http.StatusOK {
		t.Fatalf("GET /readyz = %d %v, want 200", code, body)
	}
	if ready, _ := body["ready"].(bool); !ready {
		t.Fatalf("fresh server not ready: %v", body)
	}
	comps := body["components"].(map[string]any)
	for _, name := range []string{"dispatcher", "admission", "suites"} {
		c, ok := comps[name].(map[string]any)
		if !ok || c["ok"] != true {
			t.Errorf("component %s not ok: %v", name, comps[name])
		}
	}
	if _, hasStore := comps["store"]; hasStore {
		t.Error("store probe reported without a configured store")
	}

	_, accepted := postJSON(t, ts.URL+"/v2/verify", `{
		"network": {"generator": {"kind": "fig1"}},
		"properties": [{"name": "sat-stress"}],
		"options": {"solver": {"backend": "portfolio"}}
	}`)
	id, _ := accepted["id"].(string)
	if id == "" {
		t.Fatalf("no job id: %+v", accepted)
	}
	waitDoneV2(t, ts, id)

	code, status := getHealthJSON(t, ts.URL+"/v1/status")
	if code != http.StatusOK || status["status"] != "ok" {
		t.Fatalf("GET /v1/status = %d %v, want 200 ok", code, status["status"])
	}
	build := status["build"].(map[string]any)
	if gv, _ := build["go_version"].(string); gv == "" {
		t.Errorf("status build info lacks go_version: %v", build)
	}
	if up, _ := status["uptime_seconds"].(float64); up <= 0 {
		t.Errorf("uptime_seconds = %v, want > 0", status["uptime_seconds"])
	}
	if ready := status["ready"].(map[string]any); ready["ready"] != true {
		t.Errorf("status embeds not-ready probes: %v", ready)
	}
	if suites, _ := status["suites"].([]any); len(suites) == 0 {
		t.Error("status lists no suites")
	}
	traces := status["traces"].(map[string]any)
	if cap, _ := traces["capacity"].(float64); cap <= 0 {
		t.Errorf("trace ring capacity = %v, want > 0", traces["capacity"])
	}
	backends := status["engine"].(map[string]any)["backends"].(map[string]any)
	solver := backends["portfolio"].(map[string]any)["solver"].(map[string]any)
	if c, _ := solver["conflicts"].(float64); c <= 0 {
		t.Errorf("portfolio solver depth conflicts = %v, want > 0 after sat-stress", solver["conflicts"])
	}
	if d, _ := solver["decisions"].(float64); d <= 0 {
		t.Errorf("portfolio solver depth decisions = %v, want > 0 after sat-stress", solver["decisions"])
	}
}

// TestReadyzStoreUnwritable: when the store journal's directory stops
// accepting writes, /readyz flips to 503 naming the store component, and
// /v1/status degrades — while liveness stays ok.
func TestReadyzStoreUnwritable(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	eng := engine.New(engine.Options{Workers: 1, Cache: st})
	t.Cleanup(eng.Close)
	srv := newServer(eng)
	srv.store = st
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)

	if code, body := getHealthJSON(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("GET /readyz with healthy store = %d %v, want 200", code, body)
	}

	// Make the journal directory reject new files. Root ignores permission
	// bits (CAP_DAC_OVERRIDE), so if the chmod alone doesn't break the
	// probe, remove the directory instead — the same failure class: the
	// journal's directory no longer accepts writes.
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(dir, 0o755) })
	if st.ProbeWritable() == nil {
		os.Chmod(dir, 0o755)
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
	}

	code, body := getHealthJSON(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("GET /readyz with unwritable journal = %d %v, want 503", code, body)
	}
	if ready, _ := body["ready"].(bool); ready {
		t.Error("unwritable store still reports ready")
	}
	sc, ok := body["components"].(map[string]any)["store"].(map[string]any)
	if !ok || sc["ok"] == true {
		t.Fatalf("503 does not name the store component: %v", body["components"])
	}
	if msg, _ := sc["error"].(string); msg == "" {
		t.Error("store component failure carries no error message")
	}

	if code, status := getHealthJSON(t, ts.URL+"/v1/status"); code != http.StatusOK || status["status"] != "degraded" {
		t.Errorf("GET /v1/status = %d %v, want 200 degraded", code, status["status"])
	}
	if code, _ := getHealthJSON(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Error("liveness must stay ok while unready")
	}
}
