package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"lightyear/internal/engine"
	"lightyear/internal/plan"
)

// planCost compiles a request and returns its admission cost, so the tests
// derive limits from the real check counts instead of hard-coding them.
func planCost(t *testing.T, body string) int {
	t.Helper()
	var req plan.Request
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	c, err := plan.Compile(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c.Cost()
}

const bigPlan = `{
	"network": {"generator": {"kind": "wan", "regions": 2, "routers_per_region": 1,
	                          "edge_routers": 2, "peers_per_edge": 2}},
	"properties": [{"name": "wan-peering"}],
	"options": {"wan_regions": 2}
}`

const smallPlan = `{
	"network": {"generator": {"kind": "fig1"}},
	"properties": [{"name": "fig1-no-transit"}]
}`

// TestAdmission429AndRetryAfter is the tentpole's HTTP contract: a plan
// whose compiled cost exceeds the engine budget is rejected synchronously
// with 429 + Retry-After and nothing enqueued; a smaller plan from the same
// tenant is admitted, runs, and the per-tenant counters in /v1/stats record
// both decisions.
func TestAdmission429AndRetryAfter(t *testing.T) {
	bigCost, smallCost := planCost(t, bigPlan), planCost(t, smallPlan)
	if smallCost >= bigCost {
		t.Fatalf("test plans must differ in cost: small %d, big %d", smallCost, bigCost)
	}
	eng := engine.New(engine.Options{Workers: 4,
		Admission: engine.Admission{MaxInFlightChecks: smallCost}})
	t.Cleanup(eng.Close)
	srv := newServer(eng)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)

	// Over budget: 429, Retry-After, typed JSON body, no job created.
	req, _ := http.NewRequest("POST", ts.URL+"/v2/verify", bytes.NewBufferString(bigPlan))
	req.Header.Set("X-Tenant", "acme")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget plan: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without a Retry-After header")
	}
	var rej struct {
		Tenant       string `json:"tenant"`
		Cost         int    `json:"cost"`
		Limit        int    `json:"limit"`
		RetryAfterMS int64  `json:"retry_after_ms"`
		Permanent    bool   `json:"permanent"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rej); err != nil {
		t.Fatal(err)
	}
	if rej.Tenant != "acme" || rej.Cost != bigCost || rej.Limit != smallCost || rej.RetryAfterMS <= 0 {
		t.Fatalf("429 body: %+v (want tenant acme, cost %d, limit %d)", rej, bigCost, smallCost)
	}
	if !rej.Permanent {
		t.Fatalf("a plan bigger than the whole budget must be marked permanent: %+v", rej)
	}
	srv.mu.Lock()
	jobs := len(srv.jobs)
	srv.mu.Unlock()
	if jobs != 0 {
		t.Fatalf("rejected plan created %d jobs", jobs)
	}

	// Under budget, same tenant via query parameter: admitted and verified.
	resp2, err := http.Post(ts.URL+"/v1/verify?tenant=acme", "application/json",
		bytes.NewBufferString(`{"suite": "fig1-no-transit", "generator": {"kind": "fig1"}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("under-budget plan: status %d, want 202", resp2.StatusCode)
	}
	var accept struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&accept); err != nil {
		t.Fatal(err)
	}
	j := waitDone(t, ts, accept.ID)
	if j.OK == nil || !*j.OK {
		t.Fatalf("admitted job did not verify: %+v", j)
	}
	if j.Tenant != "acme" || j.Cost != smallCost {
		t.Fatalf("job admission identity: tenant %q cost %d, want acme/%d", j.Tenant, j.Cost, smallCost)
	}

	// /v1/stats exposes the per-tenant counters.
	var stats struct {
		Engine engine.Stats `json:"engine"`
	}
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	ten := stats.Engine.Tenants["acme"]
	if ten.Admitted != 1 || ten.Rejected != 1 {
		t.Fatalf("tenant counters: %+v (want 1 admitted, 1 rejected)", ten)
	}
	if ten.InFlightCost != 0 {
		t.Fatalf("completed plan left %d in-flight cost", ten.InFlightCost)
	}
}

// TestSessionTenantInheritance: a session created under a tenant runs its
// baseline and every update under that tenant.
func TestSessionTenantInheritance(t *testing.T) {
	ts := newTestServer(t)
	body := `{"suite": "fig1-no-transit", "generator": {"kind": "fig1"}}`
	req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions", bytes.NewBufferString(body))
	req.Header.Set("X-Tenant", "netops")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("session create: status %d, want 202", resp.StatusCode)
	}
	var accept struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&accept); err != nil {
		t.Fatal(err)
	}
	waitRunDone(t, ts, accept.ID, 0)

	// A caller presenting a different identity (here: none, i.e. the
	// default tenant) may not mutate the session — its runs are charged to
	// the session's tenant.
	fresp, err := http.Post(ts.URL+"/v1/sessions/"+accept.ID+"/update", "application/json",
		bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	fresp.Body.Close()
	if fresp.StatusCode != http.StatusForbidden {
		t.Fatalf("foreign-tenant update: status %d, want 403", fresp.StatusCode)
	}
	dreq, _ := http.NewRequest("DELETE", ts.URL+"/v1/sessions/"+accept.ID, nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusForbidden {
		t.Fatalf("foreign-tenant delete: status %d, want 403", dresp.StatusCode)
	}

	// The rightful tenant's update is accepted and runs under its quota —
	// here asserted via the body's tenant field, the same channel a
	// header-less creator would have used.
	ownerBody := `{"suite": "fig1-no-transit", "generator": {"kind": "fig1"}, "tenant": "netops"}`
	uresp, err := http.Post(ts.URL+"/v1/sessions/"+accept.ID+"/update", "application/json",
		bytes.NewBufferString(ownerBody))
	if err != nil {
		t.Fatal(err)
	}
	uresp.Body.Close()
	if uresp.StatusCode != http.StatusAccepted {
		t.Fatalf("session update: status %d, want 202", uresp.StatusCode)
	}
	waitRunDone(t, ts, accept.ID, 1)

	var sess struct {
		Tenant string `json:"tenant"`
	}
	gresp, err := http.Get(ts.URL + "/v1/sessions/" + accept.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer gresp.Body.Close()
	if err := json.NewDecoder(gresp.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	if sess.Tenant != "netops" {
		t.Fatalf("session tenant = %q, want netops", sess.Tenant)
	}

	var stats struct {
		Engine engine.Stats `json:"engine"`
	}
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	// Baseline + update were both admitted as netops.
	if got := stats.Engine.Tenants["netops"].Admitted; got != 2 {
		t.Fatalf("netops admissions = %d, want 2 (baseline + update)", got)
	}
}

// TestSessionGC: idle sessions expire after the session TTL; a session
// kept active by a recent update survives the same sweep, and an expired
// session 404s exactly like a deleted one.
func TestSessionGC(t *testing.T) {
	ts, srv := newTestServerWithState(t)
	srv.sessionTTL = 500 * time.Millisecond

	create := func() string {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json",
			bytes.NewBufferString(`{"suite": "fig1-no-transit", "generator": {"kind": "fig1"}}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("session create: status %d, want 202", resp.StatusCode)
		}
		var accept struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&accept); err != nil {
			t.Fatal(err)
		}
		waitRunDone(t, ts, accept.ID, 0)
		return accept.ID
	}
	idle, active := create(), create()

	// Both are fresh: nothing expires.
	if n := srv.gc(time.Now()); n != 0 {
		t.Fatalf("gc removed %d fresh sessions", n)
	}

	// Let both cross the idle threshold, then touch only one with an
	// update — its lastActive refreshes, the other stays idle.
	time.Sleep(600 * time.Millisecond)
	uresp, err := http.Post(ts.URL+"/v1/sessions/"+active+"/update", "application/json",
		bytes.NewBufferString(`{"suite": "fig1-no-transit", "generator": {"kind": "fig1"}}`))
	if err != nil {
		t.Fatal(err)
	}
	uresp.Body.Close()
	waitRunDone(t, ts, active, 1)

	if n := srv.gc(time.Now()); n != 1 {
		t.Fatalf("gc expired %d sessions, want 1 (the idle one)", n)
	}
	for id, want := range map[string]int{idle: http.StatusNotFound, active: http.StatusOK} {
		resp, err := http.Get(ts.URL + "/v1/sessions/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET session %s = %d, want %d", id, resp.StatusCode, want)
		}
	}

	// An update to the expired session is refused like a deleted one.
	resp, err := http.Post(ts.URL+"/v1/sessions/"+idle+"/update", "application/json",
		bytes.NewBufferString(`{"suite": "fig1-no-transit", "generator": {"kind": "fig1"}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("update of expired session = %d, want 404", resp.StatusCode)
	}
}
