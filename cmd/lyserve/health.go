package main

// The health/status plane: GET /healthz (liveness), GET /readyz (component
// readiness probes), and GET /v1/status (the single JSON rollup a dashboard
// or a shard coordinator polls). /v1/stats remains the raw counters
// endpoint; /v1/status adds identity (uptime, build info), component
// health, solver-depth stats, and trace-ring occupancy in one document.

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	"lightyear/internal/engine"
	"lightyear/internal/fabric"
	"lightyear/internal/netgen"
	"lightyear/internal/store"
)

// handleHealthz is the liveness probe: the process is up and serving HTTP.
// It deliberately checks nothing else — a deadlocked dispatcher or a
// read-only store dir make the service unready, not dead.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// componentHealth is one /readyz probe result.
type componentHealth struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// readyzJSON is the GET /readyz response. Ready is the conjunction of the
// component probes; a 503 names every failing component.
type readyzJSON struct {
	Ready      bool                       `json:"ready"`
	Components map[string]componentHealth `json:"components"`
}

// probeComponents runs the readiness probes:
//
//   - store: the journal directory still accepts writes (only with -store)
//   - dispatcher: the engine's dispatcher is live (not closed)
//   - admission: the admitted-workload queue is not saturated (every further
//     submission would be shed)
//   - suites: the netgen registry has registered suites
func (s *server) probeComponents() readyzJSON {
	out := readyzJSON{Ready: true, Components: make(map[string]componentHealth)}
	set := func(name string, err error) {
		c := componentHealth{OK: err == nil}
		if err != nil {
			c.Error = err.Error()
			out.Ready = false
		}
		out.Components[name] = c
	}

	if s.store != nil {
		set("store", s.store.ProbeWritable())
	}
	var dispatchErr error
	if !s.eng.Live() {
		dispatchErr = errDispatcherClosed
	}
	set("dispatcher", dispatchErr)
	var admitErr error
	if queued, limit := s.eng.QueueSaturation(); limit > 0 && queued >= limit {
		admitErr = errAdmissionSaturated
	}
	set("admission", admitErr)
	var suiteErr error
	if len(netgen.SuiteNames()) == 0 {
		suiteErr = errNoSuites
	}
	set("suites", suiteErr)
	return out
}

// Sentinel probe errors, as errors so probeComponents stays uniform.
var (
	errDispatcherClosed   = errString("engine dispatcher is closed")
	errAdmissionSaturated = errString("admission queue is at its depth limit; submissions are being shed")
	errNoSuites           = errString("no verification suites registered")
)

type errString string

func (e errString) Error() string { return string(e) }

func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	out := s.probeComponents()
	if !out.Ready {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, out)
}

// buildInfoJSON identifies the running binary.
type buildInfoJSON struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
}

func buildInfo() buildInfoJSON {
	out := buildInfoJSON{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out.Module = bi.Main.Path
	out.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out.Revision = s.Value
		case "vcs.modified":
			out.Modified = s.Value == "true"
		}
	}
	return out
}

// traceRingJSON is the trace-ring occupancy reported in /v1/status.
type traceRingJSON struct {
	Retained int `json:"retained"`
	Capacity int `json:"capacity"`
}

// statusJSONV1 is the GET /v1/status response: one rollup of identity,
// component health, engine/tenant/backend/solver-depth stats, and telemetry
// retention.
type statusJSONV1 struct {
	Status        string         `json:"status"` // ok | degraded
	Started       time.Time      `json:"started"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	Build         buildInfoJSON  `json:"build"`
	Ready         readyzJSON     `json:"ready"`
	Engine        engine.Stats   `json:"engine"`
	Jobs          int            `json:"jobs"`
	Sessions      int            `json:"sessions"`
	Store         *store.Stats   `json:"store,omitempty"`
	Fabric        *fabric.Stats  `json:"fabric,omitempty"`
	Suites        []string       `json:"suites"`
	Traces        *traceRingJSON `json:"traces,omitempty"`
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs, sessions := len(s.jobs), len(s.sessions)
	s.mu.Unlock()
	out := statusJSONV1{
		Status:        "ok",
		Started:       s.started,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Build:         buildInfo(),
		Ready:         s.probeComponents(),
		Engine:        s.eng.Stats(),
		Jobs:          jobs,
		Sessions:      sessions,
		Fabric:        fabric.Snapshot(),
		Suites:        netgen.SuiteNames(),
	}
	if !out.Ready.Ready {
		out.Status = "degraded"
	}
	if st, ok := s.eng.Cache().(*store.Store); ok {
		stats := st.Stats()
		out.Store = &stats
	}
	if s.rec != nil {
		retained, capacity := s.rec.TraceStats()
		out.Traces = &traceRingJSON{Retained: retained, Capacity: capacity}
	}
	writeJSON(w, out)
}
