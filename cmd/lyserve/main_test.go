package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lightyear/internal/engine"
	"lightyear/internal/netgen"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 4})
	t.Cleanup(eng.Close)
	ts := httptest.NewServer(newServer(eng).routes())
	t.Cleanup(ts.Close)
	return ts
}

func postVerify(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST /v1/verify = %d, want 202 (error: %s)", resp.StatusCode, e["error"])
	}
	var out struct {
		ID        string `json:"id"`
		StatusURL string `json:"status_url"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ID == "" || out.StatusURL != "/v1/jobs/"+out.ID {
		t.Fatalf("bad accept payload: %+v", out)
	}
	return out.ID
}

func getJob(t *testing.T, ts *httptest.Server, id string) jobJSON {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s = %d, want 200", id, resp.StatusCode)
	}
	var j jobJSON
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return j
}

func waitDone(t *testing.T, ts *httptest.Server, id string) jobJSON {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		j := getJob(t, ts, id)
		if j.Status == "done" {
			return j
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not complete in time", id)
	return jobJSON{}
}

// TestVerifyRoundTrip drives the full async API: submit a WAN peering
// sweep, poll it to completion, and assert the reports and the engine's
// cross-problem dedup statistics.
func TestVerifyRoundTrip(t *testing.T) {
	ts := newTestServer(t)
	id := postVerify(t, ts, `{
		"suite": "wan-peering",
		"generator": {"kind": "wan", "regions": 3, "routers_per_region": 2,
		              "edge_routers": 2, "dcs_per_region": 1, "peers_per_edge": 2}
	}`)
	j := waitDone(t, ts, id)

	if j.Suite != "wan-peering" || j.OK == nil || !*j.OK {
		t.Fatalf("job should verify: %+v", j)
	}
	if len(j.Problems) == 0 {
		t.Fatal("no problems in job")
	}
	for _, p := range j.Problems {
		if p.Status != "done" || p.Report == nil || !p.Report.OK {
			t.Fatalf("problem %s: status=%s report=%v", p.Name, p.Status, p.Report)
		}
		if p.Completed != p.Total || p.Total != p.Report.NumChecks {
			t.Errorf("problem %s: completed %d/%d with %d checks", p.Name, p.Completed, p.Total, p.Report.NumChecks)
		}
	}

	// The sweep re-issues identical filter checks for every router ×
	// property pair: the engine must have deduped across problems.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsJSON
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Engine.CacheHits+stats.Engine.DedupHits == 0 {
		t.Errorf("expected nonzero cross-problem cache/dedup hits, stats: %+v", stats.Engine)
	}
	if stats.Engine.ChecksSolved >= stats.Engine.ChecksSubmitted {
		t.Errorf("engine solved %d of %d submitted checks; dedup had no effect",
			stats.Engine.ChecksSolved, stats.Engine.ChecksSubmitted)
	}
	if stats.Jobs == 0 {
		t.Error("stats should count the submitted job")
	}
}

// TestConcurrentVerifyJobs submits several jobs at once and requires all to
// complete with correct verdicts — the multi-tenant traffic shape lyserve
// exists for.
func TestConcurrentVerifyJobs(t *testing.T) {
	ts := newTestServer(t)
	bodies := []string{
		`{"suite": "fig1-no-transit", "generator": {"kind": "fig1"}}`,
		`{"suite": "fig1-liveness", "generator": {"kind": "fig1"}}`,
		`{"suite": "fig1-no-transit", "generator": {"kind": "fig1"}}`,
		`{"suite": "fullmesh", "generator": {"kind": "fullmesh", "size": 6}}`,
	}
	ids := make([]string, len(bodies))
	var wg sync.WaitGroup
	for i, b := range bodies {
		wg.Add(1)
		go func(i int, b string) {
			defer wg.Done()
			ids[i] = postVerify(t, ts, b)
		}(i, b)
	}
	wg.Wait()

	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate job id %s", id)
		}
		seen[id] = true
		j := waitDone(t, ts, id)
		if j.OK == nil || !*j.OK {
			t.Errorf("job %s (%s) failed: %+v", id, j.Suite, j)
		}
	}
}

// TestVerifyFromConfigDSL submits a network as DSL source, exactly as
// cmd/lightyear consumes it.
func TestVerifyFromConfigDSL(t *testing.T) {
	ts := newTestServer(t)
	body, err := json.Marshal(map[string]any{
		"suite":  "fig1-no-transit",
		"config": netgen.Fig1DSL(netgen.Fig1Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	id := postVerify(t, ts, string(body))
	j := waitDone(t, ts, id)
	if j.OK == nil || !*j.OK {
		t.Fatalf("DSL round-trip should verify: %+v", j)
	}
}

// TestNonOptionalLivenessFailureFailsJob: a required liveness problem whose
// witness path is absent from the network must fail the job, not report
// verified-OK.
func TestNonOptionalLivenessFailureFailsJob(t *testing.T) {
	ts := newTestServer(t)
	// fig1-liveness on a full mesh: the Customer -> R3 path does not exist.
	id := postVerify(t, ts, `{"suite": "fig1-liveness", "generator": {"kind": "fullmesh", "size": 4}}`)
	j := waitDone(t, ts, id)
	if j.OK == nil || *j.OK {
		t.Fatalf("job must report ok=false when a required problem cannot run: %+v", j)
	}
	if len(j.Problems) != 1 || j.Problems[0].Status != "failed" || j.Problems[0].SkipReason == "" {
		t.Fatalf("problem should be marked failed with a reason: %+v", j.Problems)
	}
}

// TestBadRequests exercises the API error contract.
func TestBadRequests(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad-json", `{`, http.StatusBadRequest},
		{"unknown-suite", `{"suite": "nope", "generator": {"kind": "fig1"}}`, http.StatusBadRequest},
		{"no-network", `{"suite": "fig1-no-transit"}`, http.StatusBadRequest},
		{"both-networks", `{"suite": "fig1-no-transit", "config": "x", "generator": {"kind": "fig1"}}`, http.StatusBadRequest},
		{"bad-generator", `{"suite": "fig1-no-transit", "generator": {"kind": "torus"}}`, http.StatusBadRequest},
		{"bad-config", `{"suite": "fig1-no-transit", "config": "not a config"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewBufferString(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}
