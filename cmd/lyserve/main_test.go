package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lightyear/internal/engine"
	"lightyear/internal/netgen"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 4})
	t.Cleanup(eng.Close)
	ts := httptest.NewServer(newServer(eng).routes())
	t.Cleanup(ts.Close)
	return ts
}

func postVerify(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST /v1/verify = %d, want 202 (error: %s)", resp.StatusCode, e["error"])
	}
	var out struct {
		ID        string `json:"id"`
		StatusURL string `json:"status_url"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ID == "" || out.StatusURL != "/v1/jobs/"+out.ID {
		t.Fatalf("bad accept payload: %+v", out)
	}
	return out.ID
}

func getJob(t *testing.T, ts *httptest.Server, id string) jobJSON {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s = %d, want 200", id, resp.StatusCode)
	}
	var j jobJSON
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return j
}

func waitDone(t *testing.T, ts *httptest.Server, id string) jobJSON {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		j := getJob(t, ts, id)
		if j.Status == "done" {
			return j
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not complete in time", id)
	return jobJSON{}
}

// TestVerifyRoundTrip drives the full async API: submit a WAN peering
// sweep, poll it to completion, and assert the reports and the engine's
// cross-problem dedup statistics.
func TestVerifyRoundTrip(t *testing.T) {
	ts := newTestServer(t)
	id := postVerify(t, ts, `{
		"suite": "wan-peering",
		"generator": {"kind": "wan", "regions": 3, "routers_per_region": 2,
		              "edge_routers": 2, "dcs_per_region": 1, "peers_per_edge": 2}
	}`)
	j := waitDone(t, ts, id)

	if j.Suite != "wan-peering" || j.OK == nil || !*j.OK {
		t.Fatalf("job should verify: %+v", j)
	}
	if len(j.Problems) == 0 {
		t.Fatal("no problems in job")
	}
	for _, p := range j.Problems {
		if p.Status != "done" || p.Report == nil || !p.Report.OK {
			t.Fatalf("problem %s: status=%s report=%v", p.Name, p.Status, p.Report)
		}
		if p.Completed != p.Total || p.Total != p.Report.NumChecks {
			t.Errorf("problem %s: completed %d/%d with %d checks", p.Name, p.Completed, p.Total, p.Report.NumChecks)
		}
	}

	// The sweep re-issues identical filter checks for every router ×
	// property pair: the engine must have deduped across problems.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsJSON
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Engine.CacheHits+stats.Engine.DedupHits == 0 {
		t.Errorf("expected nonzero cross-problem cache/dedup hits, stats: %+v", stats.Engine)
	}
	if stats.Engine.ChecksSolved >= stats.Engine.ChecksSubmitted {
		t.Errorf("engine solved %d of %d submitted checks; dedup had no effect",
			stats.Engine.ChecksSolved, stats.Engine.ChecksSubmitted)
	}
	if stats.Jobs == 0 {
		t.Error("stats should count the submitted job")
	}
}

// TestConcurrentVerifyJobs submits several jobs at once and requires all to
// complete with correct verdicts — the multi-tenant traffic shape lyserve
// exists for.
func TestConcurrentVerifyJobs(t *testing.T) {
	ts := newTestServer(t)
	bodies := []string{
		`{"suite": "fig1-no-transit", "generator": {"kind": "fig1"}}`,
		`{"suite": "fig1-liveness", "generator": {"kind": "fig1"}}`,
		`{"suite": "fig1-no-transit", "generator": {"kind": "fig1"}}`,
		`{"suite": "fullmesh", "generator": {"kind": "fullmesh", "size": 6}}`,
	}
	ids := make([]string, len(bodies))
	var wg sync.WaitGroup
	for i, b := range bodies {
		wg.Add(1)
		go func(i int, b string) {
			defer wg.Done()
			ids[i] = postVerify(t, ts, b)
		}(i, b)
	}
	wg.Wait()

	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate job id %s", id)
		}
		seen[id] = true
		j := waitDone(t, ts, id)
		if j.OK == nil || !*j.OK {
			t.Errorf("job %s (%s) failed: %+v", id, j.Suite, j)
		}
	}
}

// TestVerifyFromConfigDSL submits a network as DSL source, exactly as
// cmd/lightyear consumes it.
func TestVerifyFromConfigDSL(t *testing.T) {
	ts := newTestServer(t)
	body, err := json.Marshal(map[string]any{
		"suite":  "fig1-no-transit",
		"config": netgen.Fig1DSL(netgen.Fig1Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	id := postVerify(t, ts, string(body))
	j := waitDone(t, ts, id)
	if j.OK == nil || !*j.OK {
		t.Fatalf("DSL round-trip should verify: %+v", j)
	}
}

// TestNonOptionalLivenessFailureFailsJob: a required liveness problem whose
// witness path is absent from the network must fail the job, not report
// verified-OK.
func TestNonOptionalLivenessFailureFailsJob(t *testing.T) {
	ts := newTestServer(t)
	// fig1-liveness on a full mesh: the Customer -> R3 path does not exist.
	id := postVerify(t, ts, `{"suite": "fig1-liveness", "generator": {"kind": "fullmesh", "size": 4}}`)
	j := waitDone(t, ts, id)
	if j.OK == nil || *j.OK {
		t.Fatalf("job must report ok=false when a required problem cannot run: %+v", j)
	}
	if len(j.Problems) != 1 || j.Problems[0].Status != "failed" || j.Problems[0].SkipReason == "" {
		t.Fatalf("problem should be marked failed with a reason: %+v", j.Problems)
	}
}

// newTestServerWithState also exposes the server struct, for tests that
// drive internals (GC) directly.
func newTestServerWithState(t *testing.T) (*httptest.Server, *server) {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 4})
	t.Cleanup(eng.Close)
	srv := newServer(eng)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return ts, srv
}

// TestJobGC: completed jobs must be collectable after the TTL; running and
// fresh jobs must survive.
func TestJobGC(t *testing.T) {
	ts, srv := newTestServerWithState(t)
	id := postVerify(t, ts, `{"suite": "fig1-no-transit", "generator": {"kind": "fig1"}}`)
	waitDone(t, ts, id)

	// Before the TTL elapses nothing is collected.
	if n := srv.gc(time.Now()); n != 0 {
		t.Fatalf("gc before TTL removed %d jobs", n)
	}
	// After the TTL the completed job goes away and queries 404.
	if n := srv.gc(time.Now().Add(srv.ttl + time.Minute)); n != 1 {
		t.Fatalf("gc after TTL removed %d jobs, want 1", n)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("collected job should 404, got %d", resp.StatusCode)
	}
}

type sessionStatus struct {
	ID          string `json:"id"`
	Suite       string `json:"suite"`
	Fingerprint string `json:"fingerprint"`
	Results     int    `json:"retained_results"`
	Runs        []struct {
		Seq      int    `json:"seq"`
		Baseline bool   `json:"baseline"`
		Status   string `json:"status"`
		Error    string `json:"error"`
		Result   *struct {
			OK             bool     `json:"ok"`
			TotalChecks    int      `json:"total_checks"`
			DirtyChecks    int      `json:"dirty_checks"`
			ReusedResults  int      `json:"reused_results"`
			Solved         int      `json:"solved"`
			ChangedRouters []string `json:"changed_routers"`
		} `json:"result"`
	} `json:"runs"`
}

func getSession(t *testing.T, ts *httptest.Server, id string) sessionStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/sessions/%s = %d, want 200", id, resp.StatusCode)
	}
	var s sessionStatus
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	return s
}

func waitRunDone(t *testing.T, ts *httptest.Server, id string, seq int) sessionStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		s := getSession(t, ts, id)
		if seq < len(s.Runs) && s.Runs[seq].Status != "running" {
			return s
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("session %s run %d did not complete in time", id, seq)
	return sessionStatus{}
}

// TestSessionIncrementalFlow drives the delta session API: pin a baseline,
// submit a no-op update and a growth update, and assert the incremental
// accounting.
func TestSessionIncrementalFlow(t *testing.T) {
	ts := newTestServer(t)
	gen := func(edgeRouters int) string {
		return fmt.Sprintf(`{"kind": "wan", "regions": 2, "routers_per_region": 1,
			"edge_routers": %d, "dcs_per_region": 1, "peers_per_edge": 2}`, edgeRouters)
	}

	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json",
		bytes.NewBufferString(`{"suite": "wan-peering", "generator": `+gen(1)+`}`))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID        string `json:"id"`
		StatusURL string `json:"status_url"`
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/sessions = %d, want 202", resp.StatusCode)
	}
	json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	if created.ID == "" || created.StatusURL != "/v1/sessions/"+created.ID {
		t.Fatalf("bad accept payload: %+v", created)
	}

	st := waitRunDone(t, ts, created.ID, 0)
	if st.Suite != "wan-peering" || st.Fingerprint == "" || st.Results == 0 {
		t.Fatalf("bad session state after baseline: %+v", st)
	}
	base := st.Runs[0]
	if base.Status != "done" || !base.Baseline || base.Result == nil || !base.Result.OK {
		t.Fatalf("baseline run: %+v (err %s)", base, base.Error)
	}
	if base.Result.DirtyChecks != base.Result.TotalChecks || base.Result.Solved == 0 {
		t.Fatalf("baseline should be fully dirty and solve checks: %+v", base.Result)
	}

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/sessions/"+created.ID+"/update",
			"application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			var e map[string]string
			json.NewDecoder(resp.Body).Decode(&e)
			t.Fatalf("POST update = %d (error: %s)", resp.StatusCode, e["error"])
		}
		var out struct {
			Update int `json:"update"`
		}
		json.NewDecoder(resp.Body).Decode(&out)
		return out.Update
	}

	// No-op update: everything reused, nothing solved.
	seq := post(`{"generator": ` + gen(1) + `}`)
	st = waitRunDone(t, ts, created.ID, seq)
	noop := st.Runs[seq]
	if noop.Status != "done" || noop.Result == nil || !noop.Result.OK {
		t.Fatalf("no-op update: %+v (err %s)", noop, noop.Error)
	}
	if noop.Result.DirtyChecks != 0 || noop.Result.Solved != 0 ||
		noop.Result.ReusedResults != noop.Result.TotalChecks {
		t.Fatalf("no-op update should reuse everything: %+v", noop.Result)
	}

	// Growth update: adding an edge router dirties part of the suite.
	seq = post(`{"generator": ` + gen(2) + `}`)
	st = waitRunDone(t, ts, created.ID, seq)
	grow := st.Runs[seq]
	if grow.Status != "done" || grow.Result == nil || !grow.Result.OK {
		t.Fatalf("growth update: %+v (err %s)", grow, grow.Error)
	}
	r := grow.Result
	if r.ReusedResults == 0 || r.DirtyChecks == 0 || r.DirtyChecks >= r.TotalChecks {
		t.Fatalf("growth update should mix reuse and dirty work: %+v", r)
	}
	if r.Solved >= base.Result.Solved+r.TotalChecks-r.ReusedResults+1 {
		t.Fatalf("growth update solved too much: %+v", r)
	}
	if len(r.ChangedRouters) == 0 {
		t.Fatalf("growth update should report changed routers: %+v", r)
	}

	// Errors: unknown session, suite mismatch.
	resp, err = http.Post(ts.URL+"/v1/sessions/session-999/update", "application/json",
		bytes.NewBufferString(`{"generator": `+gen(1)+`}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session update = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/sessions/"+created.ID+"/update", "application/json",
		bytes.NewBufferString(`{"suite": "fullmesh", "generator": `+gen(1)+`}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("suite-mismatch update = %d, want 400", resp.StatusCode)
	}

	// Delete the session: it disappears, and further use 404s.
	del := func() int {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+created.ID, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del(); code != http.StatusOK {
		t.Fatalf("DELETE session = %d, want 200", code)
	}
	if code := del(); code != http.StatusNotFound {
		t.Fatalf("second DELETE = %d, want 404", code)
	}
	resp, err = http.Get(ts.URL + "/v1/sessions/" + created.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET deleted session = %d, want 404", resp.StatusCode)
	}
}

// TestBadRequests exercises the API error contract.
func TestBadRequests(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad-json", `{`, http.StatusBadRequest},
		{"unknown-suite", `{"suite": "nope", "generator": {"kind": "fig1"}}`, http.StatusBadRequest},
		{"no-network", `{"suite": "fig1-no-transit"}`, http.StatusBadRequest},
		{"both-networks", `{"suite": "fig1-no-transit", "config": "x", "generator": {"kind": "fig1"}}`, http.StatusBadRequest},
		{"bad-generator", `{"suite": "fig1-no-transit", "generator": {"kind": "torus"}}`, http.StatusBadRequest},
		{"bad-config", `{"suite": "fig1-no-transit", "config": "not a config"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewBufferString(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// --- v2 plan API ---

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

// TestV2PlanVerifyEventsAndSnapshot drives the v2 surface end to end: POST
// a multi-property scoped plan, follow the NDJSON event stream to the final
// plan event, and cross-check the grouped job snapshot and cross-property
// cache reuse.
func TestV2PlanVerifyEventsAndSnapshot(t *testing.T) {
	ts := newTestServer(t)
	resp, accepted := postJSON(t, ts.URL+"/v2/verify", `{
		"network": {"generator": {"kind": "wan", "regions": 2, "routers_per_region": 2,
		                          "edge_routers": 1, "dcs_per_region": 1, "peers_per_edge": 1}},
		"properties": [{"name": "wan-peering", "routers": ["wan-r0-0"]},
		               {"name": "wan-peering", "routers": ["wan-r1-0"]}],
		"options": {"wan_regions": 2}
	}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v2/verify = %d (%v), want 202", resp.StatusCode, accepted)
	}
	id, _ := accepted["id"].(string)
	if id == "" || accepted["events_url"] != "/v2/jobs/"+id+"/events" ||
		accepted["status_url"] != "/v2/jobs/"+id {
		t.Fatalf("bad accept payload: %+v", accepted)
	}

	// Follow the event stream: it must replay history, stream live events,
	// and terminate with the plan event.
	eventsResp, err := http.Get(ts.URL + "/v2/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eventsResp.Body.Close()
	if ct := eventsResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content-type = %q", ct)
	}
	var checks, problems, properties, plans int
	var planOK bool
	sc := bufio.NewScanner(eventsResp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		var ev struct {
			Type string `json:"type"`
			OK   *bool  `json:"ok"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "check":
			checks++
		case "problem":
			problems++
		case "property":
			properties++
			if ev.OK == nil || !*ev.OK {
				t.Fatalf("property event not ok: %s", sc.Text())
			}
		case "plan":
			plans++
			planOK = ev.OK != nil && *ev.OK
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	wantProblems := 2 * len(netgen.PeeringProperties(2))
	if checks == 0 || problems != wantProblems || properties != 2 || plans != 1 || !planOK {
		t.Fatalf("event stream: %d checks, %d problems (want %d), %d properties, %d plans, ok=%v",
			checks, problems, wantProblems, properties, plans, planOK)
	}

	// The grouped snapshot agrees, and the two scoped instances of the same
	// suite shared their checks on the engine.
	resp2, err := http.Get(ts.URL + "/v2/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var job struct {
		Status     string `json:"status"`
		OK         *bool  `json:"ok"`
		Properties []struct {
			Property struct {
				Name    string   `json:"name"`
				Routers []string `json:"routers"`
			} `json:"property"`
			OK    *bool `json:"ok"`
			Stats struct {
				Checks    int `json:"checks"`
				CacheHits int `json:"cache_hits"`
				DedupHits int `json:"dedup_hits"`
			} `json:"stats"`
			Problems []struct {
				Status string `json:"status"`
				Report *struct {
					OK bool `json:"ok"`
				} `json:"report"`
			} `json:"problems"`
		} `json:"properties"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	if job.Status != "done" || job.OK == nil || !*job.OK || len(job.Properties) != 2 {
		t.Fatalf("v2 snapshot: %+v", job)
	}
	reuse := 0
	for i, pr := range job.Properties {
		if pr.OK == nil || !*pr.OK || pr.Property.Name != "wan-peering" || len(pr.Property.Routers) != 1 {
			t.Fatalf("property %d: %+v", i, pr)
		}
		for _, pb := range pr.Problems {
			if pb.Status != "done" || pb.Report == nil || !pb.Report.OK {
				t.Fatalf("property %d problem: %+v", i, pb)
			}
		}
		reuse += pr.Stats.CacheHits + pr.Stats.DedupHits
	}
	if reuse == 0 {
		t.Error("expected cross-property cache/dedup reuse in per-property stats")
	}
}

// TestV2LateEventSubscriber: subscribing after completion still replays the
// full history and terminates.
func TestV2LateEventSubscriber(t *testing.T) {
	ts := newTestServer(t)
	_, accepted := postJSON(t, ts.URL+"/v2/verify",
		`{"network": {"generator": {"kind": "fig1"}}, "properties": [{"name": "fig1-no-transit"}]}`)
	id := accepted["id"].(string)
	waitDone(t, ts, id) // v1 job view works for v2 jobs too

	resp, err := http.Get(ts.URL + "/v2/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sawPlan bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if bytes.Contains(sc.Bytes(), []byte(`"type":"plan"`)) {
			sawPlan = true
		}
	}
	if !sawPlan {
		t.Fatal("late subscriber did not see the replayed plan event")
	}
}

// TestV2BadRequests exercises the v2 error contract.
func TestV2BadRequests(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad-json", `{`, http.StatusBadRequest},
		{"no-network", `{"properties": [{"name": "fig1-no-transit"}]}`, http.StatusBadRequest},
		{"no-properties", `{"network": {"generator": {"kind": "fig1"}}}`, http.StatusBadRequest},
		{"unknown-property", `{"network": {"generator": {"kind": "fig1"}}, "properties": [{"name": "nope"}]}`, http.StatusBadRequest},
		{"unknown-router", `{"network": {"generator": {"kind": "fig1"}}, "properties": [{"name": "fig1-no-transit", "routers": ["bogus"]}]}`, http.StatusBadRequest},
		{"config-path-rejected", `{"network": {"config_path": "/etc/passwd"}, "properties": [{"name": "fig1-no-transit"}]}`, http.StatusBadRequest},
		{"baseline-no-session", `{"network": {"baseline": "session-99"}, "properties": [{"name": "fig1-no-transit"}]}`, http.StatusBadRequest},
		{"delta-on-verify", `{"network": {"generator": {"kind": "fig1"}}, "properties": [{"name": "fig1-no-transit"}], "options": {"baseline": {"generator": {"kind": "fig1"}}}}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, out := postJSON(t, ts.URL+"/v2/verify", c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
		if msg, _ := out["error"].(string); c.name == "config-path-rejected" && !strings.Contains(msg, "config_path") {
			// The rejection must happen at the API boundary — before any
			// filesystem access — so the error names the field, not the file.
			t.Errorf("config_path rejection should not touch the filesystem: %q", out["error"])
		}
	}
}

// TestRequestBodyTooLarge: every decode site must cap bodies at 1 MiB and
// answer 413.
func TestRequestBodyTooLarge(t *testing.T) {
	ts := newTestServer(t)
	huge := `{"suite": "fig1-no-transit", "config": "` + strings.Repeat("x", 2<<20) + `"}`
	for _, url := range []string{"/v1/verify", "/v1/sessions", "/v2/verify", "/v2/sessions"} {
		resp, _ := postJSON(t, ts.URL+url, huge)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s with 2 MiB body = %d, want 413", url, resp.StatusCode)
		}
	}
	// Session update decode sites, against a real session.
	_, accepted := postJSON(t, ts.URL+"/v1/sessions",
		`{"suite": "fig1-no-transit", "generator": {"kind": "fig1"}}`)
	id := accepted["id"].(string)
	for _, url := range []string{"/v1/sessions/" + id + "/update", "/v2/sessions/" + id + "/update"} {
		resp, _ := postJSON(t, ts.URL+url, huge)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s with 2 MiB body = %d, want 413", url, resp.StatusCode)
		}
	}
}

// TestV2SessionScopedPlan: a v2 session pins a scoped multi-property plan;
// updates inherit the scoping, and a v2 verify can reference the session's
// pinned baseline as its network source.
func TestV2SessionScopedPlan(t *testing.T) {
	ts := newTestServer(t)
	gen := func(edgeRouters int) string {
		return fmt.Sprintf(`{"kind": "wan", "regions": 2, "routers_per_region": 1,
			"edge_routers": %d, "dcs_per_region": 1, "peers_per_edge": 2}`, edgeRouters)
	}
	resp, accepted := postJSON(t, ts.URL+"/v2/sessions", `{
		"network": {"generator": `+gen(1)+`},
		"properties": [{"name": "wan-peering", "routers": ["wan-r0-0", "wan-r1-0"]}],
		"options": {"wan_regions": 2}
	}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v2/sessions = %d (%v), want 202", resp.StatusCode, accepted)
	}
	id := accepted["id"].(string)
	if accepted["status_url"] != "/v2/sessions/"+id {
		t.Fatalf("bad accept payload: %+v", accepted)
	}

	st := waitRunDone(t, ts, id, 0)
	base := st.Runs[0]
	if base.Status != "done" || base.Result == nil || !base.Result.OK {
		t.Fatalf("baseline run: %+v (err %s)", base, base.Error)
	}
	// The scoped plan covers exactly 2 routers × 11 properties.
	if want := 2 * len(netgen.PeeringProperties(2)); base.Result.TotalChecks == 0 ||
		len(st.Runs) != 1 || baseProblemCount(t, ts, id) != want {
		t.Fatalf("scoped baseline shape wrong: %+v (problems %d, want %d)",
			base.Result, baseProblemCount(t, ts, id), want)
	}

	// Update with a grown network: scoping is inherited, work is reused.
	resp, out := postJSON(t, ts.URL+"/v2/sessions/"+id+"/update",
		`{"network": {"generator": `+gen(2)+`}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST v2 update = %d (%v), want 202", resp.StatusCode, out)
	}
	st = waitRunDone(t, ts, id, 1)
	upd := st.Runs[1]
	if upd.Status != "done" || upd.Result == nil || !upd.Result.OK {
		t.Fatalf("update run: %+v (err %s)", upd, upd.Error)
	}
	if upd.Result.ReusedResults == 0 || baseProblemCount(t, ts, id) != 2*len(netgen.PeeringProperties(2)) {
		t.Fatalf("scoped update should reuse and keep scope: %+v", upd.Result)
	}

	// An update whose network no longer contains a scoped router must be
	// rejected, not verified vacuously (wan-r1-0 vanishes with regions=1).
	resp, out = postJSON(t, ts.URL+"/v2/sessions/"+id+"/update",
		`{"network": {"generator": {"kind": "wan", "regions": 1, "routers_per_region": 1,
		                            "edge_routers": 2, "dcs_per_region": 1, "peers_per_edge": 2}}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("update dropping a scoped router = %d (%v), want 400", resp.StatusCode, out)
	}

	// A v2 verify over the session's pinned baseline.
	resp, accepted = postJSON(t, ts.URL+"/v2/verify", `{
		"network": {"baseline": "`+id+`"},
		"properties": [{"name": "wan-ip-reuse"}],
		"options": {"wan_regions": 2}
	}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("baseline-ref verify = %d (%v), want 202", resp.StatusCode, accepted)
	}
	j := waitDone(t, ts, accepted["id"].(string))
	if j.OK == nil || !*j.OK {
		t.Fatalf("baseline-ref job failed: %+v", j)
	}
}

// baseProblemCount counts the problems of the session's latest run.
func baseProblemCount(t *testing.T, ts *httptest.Server, id string) int {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s struct {
		Runs []struct {
			Result *struct {
				Problems []struct {
					Name string `json:"name"`
				} `json:"problems"`
			} `json:"result"`
		} `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	last := s.Runs[len(s.Runs)-1]
	if last.Result == nil {
		return -1
	}
	return len(last.Result.Problems)
}

// TestSessionUpdateAmbiguousSourceRejected: an update body setting both
// config and generator must 400, not silently pick one.
func TestSessionUpdateAmbiguousSourceRejected(t *testing.T) {
	ts := newTestServer(t)
	_, accepted := postJSON(t, ts.URL+"/v1/sessions",
		`{"suite": "fig1-no-transit", "generator": {"kind": "fig1"}}`)
	id := accepted["id"].(string)
	ambiguous := fmt.Sprintf(`{"config": %q, "generator": {"kind": "fig1"}}`,
		netgen.Fig1DSL(netgen.Fig1Options{}))
	for _, url := range []string{"/v1/sessions/" + id + "/update", "/v2/sessions/" + id + "/update"} {
		resp, out := postJSON(t, ts.URL+url, ambiguous)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s with ambiguous network = %d (%v), want 400", url, resp.StatusCode, out)
		}
	}
	// v2 update bodies nest the source under "network".
	resp, out := postJSON(t, ts.URL+"/v2/sessions/"+id+"/update",
		`{"network": `+ambiguous+`}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("v2 nested ambiguous network = %d (%v), want 400", resp.StatusCode, out)
	}
}
