package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"lightyear/internal/migrate"
)

// createFig1Session pins a v2 session on the Figure-1 network with the
// no-transit property and waits for its baseline run.
func createFig1Session(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v2/sessions", "application/json", bytes.NewBufferString(
		`{"network": {"generator": {"kind": "fig1"}}, "properties": [{"name": "fig1-no-transit"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST /v2/sessions = %d (error: %s)", resp.StatusCode, e["error"])
	}
	var created struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&created)
	st := waitRunDone(t, ts, created.ID, 0)
	if st.Runs[0].Status != "done" {
		t.Fatalf("baseline run: %+v", st.Runs[0])
	}
	return created.ID
}

// postMigrate streams a migration plan and returns the decoded NDJSON
// events. A non-200 answer fails the test unless wantCode says otherwise.
func postMigrate(t *testing.T, ts *httptest.Server, id, body string, wantCode int) []migrate.Event {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v2/sessions/"+id+"/migrate", "application/json",
		bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST migrate = %d, want %d (error: %s)", resp.StatusCode, wantCode, e["error"])
	}
	if wantCode != http.StatusOK {
		return nil
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var events []migrate.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev migrate.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func eventOfType(events []migrate.Event, typ string) *migrate.Event {
	for i := range events {
		if events[i].Type == typ {
			return &events[i]
		}
	}
	return nil
}

const badOrderBody = `{"steps": [
	{"label": "retire", "mutation": {"kind": "remove-export-clause", "from": "R2", "to": "ISP2", "seq": 10}},
	{"label": "shield", "mutation": {"kind": "insert-export-deny", "from": "R2", "to": "ISP2", "seq": 5, "match": "community:100:1"}}
]}`

const goodOrderBody = `{"steps": [
	{"label": "shield", "mutation": {"kind": "insert-export-deny", "from": "R2", "to": "ISP2", "seq": 5, "match": "community:100:1"}},
	{"label": "retire", "mutation": {"kind": "remove-export-clause", "from": "R2", "to": "ISP2", "seq": 10}}
]}`

// TestSessionMigrate drives the endpoint end to end: a violating order
// streams its first violating step and rolls the session back; the safe
// order of the same steps verifies and re-pins the session on the migrated
// state, which follow-up updates delta against.
func TestSessionMigrate(t *testing.T) {
	ts := newTestServer(t)
	id := createFig1Session(t, ts)
	fpBefore := getSession(t, ts, id).Fingerprint

	// Violating order: retire-first leaks transit routes after step 0.
	events := postMigrate(t, ts, id, badOrderBody, http.StatusOK)
	viol := eventOfType(events, migrate.EvStepViolated)
	if viol == nil || viol.Step != 0 || viol.Label != "retire" {
		t.Fatalf("want step_violated at step 0 (retire), got %+v", viol)
	}
	if eventOfType(events, migrate.EvCheck) == nil {
		t.Fatal("the violating step should stream its failing checks")
	}
	done := eventOfType(events, migrate.EvDone)
	if done == nil || done.Result == nil || done.Result.OK {
		t.Fatalf("done event must carry the failed result: %+v", done)
	}
	if errEv := eventOfType(events, migrate.EvError); errEv != nil {
		t.Fatalf("plan verdicts are not stream errors: %+v", errEv)
	}

	// Rollback: the session still pins the original baseline, and a no-op
	// update against the original network reuses everything.
	st := waitRunDone(t, ts, id, 1)
	if st.Fingerprint != fpBefore {
		t.Fatalf("failed migration moved the session: %s -> %s", fpBefore, st.Fingerprint)
	}
	if len(st.Runs) != 2 || st.Runs[1].Status != "done" {
		t.Fatalf("migrate run should be recorded as done: %+v", st.Runs)
	}
	seq := postUpdateV2(t, ts, id, `{"network": {"generator": {"kind": "fig1"}}}`)
	st = waitRunDone(t, ts, id, seq)
	if r := st.Runs[seq].Result; r == nil || r.DirtyChecks != 0 || r.Solved != 0 {
		t.Fatalf("update after rollback must be a no-op against the original state: %+v", r)
	}

	// Safe order: the migration verifies, every step mixes dirty work and
	// reuse, and the session moves to the final state.
	events = postMigrate(t, ts, id, goodOrderBody, http.StatusOK)
	done = eventOfType(events, migrate.EvDone)
	if done == nil || done.Result == nil || !done.Result.OK {
		t.Fatalf("safe order must verify: %+v", done)
	}
	for _, sr := range done.Result.Steps {
		if !sr.OK || sr.Dirty == 0 || sr.Reused == 0 {
			t.Fatalf("step %s should delta, not re-verify: %+v", sr.Label, sr)
		}
	}
	st = waitRunDone(t, ts, id, seq+1)
	if st.Fingerprint == fpBefore {
		t.Fatal("successful migration must re-pin the session on the migrated state")
	}

	// Satellite consistency: a follow-up update deltas against the
	// *post-migration* state — submitting the pre-migration network now
	// shows R2's revert as dirty work, not a no-op.
	seq = postUpdateV2(t, ts, id, `{"network": {"generator": {"kind": "fig1"}}}`)
	st = waitRunDone(t, ts, id, seq)
	r := st.Runs[seq].Result
	if r == nil || r.DirtyChecks == 0 {
		t.Fatalf("update after migration must diff against the migrated state: %+v", r)
	}
	if len(r.ChangedRouters) != 1 || r.ChangedRouters[0] != "R2" {
		t.Fatalf("changed routers = %v, want [R2]", r.ChangedRouters)
	}
}

// TestSessionMigrateSearch: an unordered change set streams search events
// and reports the safe order it found.
func TestSessionMigrateSearch(t *testing.T) {
	ts := newTestServer(t)
	id := createFig1Session(t, ts)
	body := `{"unordered": true, "steps": [
		{"label": "reinstate", "mutation": {"kind": "insert-export-deny", "from": "R2", "to": "ISP2", "seq": 10, "match": "community:100:1"}},
		{"label": "retire", "mutation": {"kind": "remove-export-clause", "from": "R2", "to": "ISP2", "seq": 10}},
		{"label": "shield", "mutation": {"kind": "insert-export-deny", "from": "R2", "to": "ISP2", "seq": 5, "match": "community:100:1"}}
	]}`
	events := postMigrate(t, ts, id, body, http.StatusOK)
	found := eventOfType(events, migrate.EvOrderFound)
	if found == nil || len(found.Labels) != 3 ||
		found.Labels[0] != "shield" || found.Labels[1] != "retire" || found.Labels[2] != "reinstate" {
		t.Fatalf("want order_found shield retire reinstate, got %+v", found)
	}
	done := eventOfType(events, migrate.EvDone)
	if done == nil || done.Result == nil || !done.Result.OK || done.Result.Ordered {
		t.Fatalf("search must succeed: %+v", done)
	}
}

// TestSessionMigrateRejects: malformed plans are 400s, foreign tenants
// 403s, unknown sessions 404s — all before anything is admitted or run.
func TestSessionMigrateRejects(t *testing.T) {
	ts := newTestServer(t)
	id := createFig1Session(t, ts)

	for name, body := range map[string]string{
		"no steps":        `{"steps": []}`,
		"pinned network":  `{"network": {"generator": {"kind": "fig1"}}, "steps": [{"mutation": {"kind": "tighten-imports", "at": "R1"}}]}`,
		"bad mutation":    `{"steps": [{"mutation": {"kind": "frobnicate"}}]}`,
		"bad config step": `{"steps": [{"config": "node { nonsense"}]}`,
	} {
		if postMigrate(t, ts, id, body, http.StatusBadRequest); t.Failed() {
			t.Fatalf("case %q", name)
		}
	}

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v2/sessions/"+id+"/migrate",
		bytes.NewBufferString(goodOrderBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Tenant", "intruder")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("foreign tenant = %d, want 403", resp.StatusCode)
	}

	postMigrate(t, ts, "session-999", goodOrderBody, http.StatusNotFound)
}

// postUpdateV2 submits a v2 session update and returns its run sequence.
func postUpdateV2(t *testing.T, ts *httptest.Server, id, body string) int {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v2/sessions/"+id+"/update", "application/json",
		bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST update = %d (error: %s)", resp.StatusCode, e["error"])
	}
	var out struct {
		Update int `json:"update"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	return out.Update
}
