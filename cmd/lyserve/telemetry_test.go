package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lightyear/internal/engine"
	"lightyear/internal/plan"
	"lightyear/internal/telemetry"
)

// newTelemetryTestServer builds a service whose engine emits into a live
// recorder, the way main() always wires production lyserve.
func newTelemetryTestServer(t *testing.T) (*httptest.Server, *telemetry.Recorder) {
	t.Helper()
	rec := telemetry.New(0)
	eng := engine.New(engine.Options{Workers: 4, Telemetry: rec})
	t.Cleanup(eng.Close)
	ts := httptest.NewServer(newServer(eng).routes())
	t.Cleanup(ts.Close)
	return ts, rec
}

const tracedPlan = `{
	"network": {"generator": {"kind": "wan", "regions": 2, "routers_per_region": 1,
	            "edge_routers": 2, "dcs_per_region": 1, "peers_per_edge": 2}},
	"properties": [{"name": "wan-peering", "routers": ["edge-0"]}],
	"options": {"wan_regions": 2}
}`

// TestTraceIDPropagation follows one trace ID through the whole v2 surface:
// the X-Trace-Id response header, the accept body, every NDJSON event of
// the run, the job snapshot, and finally the span tree GET /v1/traces/{id}
// serves once the run lands in the recorder's ring.
func TestTraceIDPropagation(t *testing.T) {
	ts, _ := newTelemetryTestServer(t)

	resp, err := http.Post(ts.URL+"/v2/verify", "application/json", bytes.NewBufferString(tracedPlan))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v2/verify = %d, want 202 (%s)", resp.StatusCode, body)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("202 response has no X-Trace-Id header")
	}
	var accept struct {
		ID      string `json:"id"`
		TraceID string `json:"trace_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&accept); err != nil {
		t.Fatal(err)
	}
	if accept.TraceID != traceID {
		t.Fatalf("accept body trace_id %q != header %q", accept.TraceID, traceID)
	}

	// Every event of the run carries the trace ID; the stream closes after
	// the final plan event, by which point the trace is finished.
	evResp, err := http.Get(ts.URL + "/v2/jobs/" + accept.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	events := 0
	sc := bufio.NewScanner(evResp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev plan.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if ev.TraceID != traceID {
			t.Fatalf("event %q carries trace_id %q, want %q", ev.Type, ev.TraceID, traceID)
		}
		events++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("event stream delivered nothing")
	}

	var job jobV2JSON
	getJSON(t, ts, "/v2/jobs/"+accept.ID, &job)
	if job.TraceID != traceID {
		t.Fatalf("job snapshot trace_id %q, want %q", job.TraceID, traceID)
	}

	var snap telemetry.TraceSnapshot
	getJSON(t, ts, "/v1/traces/"+traceID, &snap)
	if snap.ID != traceID {
		t.Fatalf("trace snapshot id %q, want %q", snap.ID, traceID)
	}
	names := map[string]bool{}
	for _, s := range snap.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"compile", "admit"} {
		if !names[want] {
			t.Errorf("trace has no %q span; roots: %v", want, rootNames(snap))
		}
	}
	problem := false
	for _, s := range snap.Spans {
		if strings.HasPrefix(s.Name, "problem:") {
			problem = true
			if len(s.Children) == 0 {
				t.Errorf("problem span %q has no engine child spans", s.Name)
			}
		}
	}
	if !problem {
		t.Errorf("trace has no problem spans; roots: %v", rootNames(snap))
	}

	// The listing surfaces the same trace.
	var list struct {
		Count  int                       `json:"count"`
		Traces []telemetry.TraceSnapshot `json:"traces"`
	}
	getJSON(t, ts, "/v1/traces", &list)
	found := false
	for _, tr := range list.Traces {
		if tr.ID == traceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace %s missing from /v1/traces (count=%d)", traceID, list.Count)
	}
}

// TestMetricsEndpoint asserts the exposition surface after a completed run:
// content type, solver counters with non-zero values, and histogram bucket
// series — the same lines the CI smoke greps.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTelemetryTestServer(t)

	resp, err := http.Post(ts.URL+"/v2/verify", "application/json", bytes.NewBufferString(tracedPlan))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		resp.Body.Close()
		t.Fatalf("POST /v2/verify = %d, want 202", resp.StatusCode)
	}
	var accept struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&accept); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Draining the event stream is a deterministic completion wait: the
	// stream closes only after the final plan event.
	evResp, err := http.Get(ts.URL + "/v2/jobs/" + accept.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, evResp.Body)
	evResp.Body.Close()

	mResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mResp.Body.Close()
	if mResp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", mResp.StatusCode)
	}
	if ct := mResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics Content-Type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(mResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE lightyear_checks_solved_total counter",
		`lightyear_checks_solved_total{backend="native",status="ok"}`,
		"lightyear_queue_wait_seconds_bucket",
		"lightyear_solve_seconds_bucket",
		"lightyear_jobs_submitted_total",
		"lightyear_inflight_cost",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The run really solved checks: its solved counter must be non-zero.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `lightyear_checks_solved_total{backend="native",status="ok"}`) {
			if strings.HasSuffix(line, " 0") {
				t.Errorf("solved counter is zero: %q", line)
			}
		}
	}
}

// getJSON fetches path and decodes the JSON body, failing on non-200.
func getJSON(t *testing.T, ts *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d (%s)", path, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func rootNames(snap telemetry.TraceSnapshot) []string {
	var out []string
	for _, s := range snap.Spans {
		out = append(out, s.Name)
	}
	return out
}
