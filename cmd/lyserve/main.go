// Command lyserve is the Lightyear verification service: an HTTP JSON API
// that runs verification jobs asynchronously on a shared internal/engine
// Engine, so concurrent requests dedup identical local checks and reuse the
// process-wide LRU result cache.
//
// Usage:
//
//	lyserve [-addr :8080] [-workers N] [-cache N]
//
// API:
//
//	POST /v1/verify
//	    Body: {"suite": "<suite>", "regions": N,
//	           "config": "<internal/config DSL source>"} or
//	          {"suite": "<suite>",
//	           "generator": {"kind": "fig1" | "fullmesh" | "wan",
//	                         "size": N,                      // fullmesh
//	                         "regions": N, "routers_per_region": N,
//	                         "edge_routers": N, "dcs_per_region": N,
//	                         "peers_per_edge": N}}           // wan
//	    Suites are the names in the internal/netgen registry
//	    (fig1-no-transit, fig1-liveness, fullmesh, wan-peering,
//	    wan-ip-reuse, wan-ip-liveness).
//	    Returns 202 with {"id": "...", "status_url": "/v1/jobs/<id>"}; the
//	    job runs asynchronously on the engine.
//
//	GET /v1/jobs/{id}
//	    Returns the job: overall status (running|done), per-problem
//	    completion counts streamed from engine progress events, and — once
//	    complete — each problem's report in the same JSON encoding
//	    `lightyear -json` emits, plus per-problem cache/dedup stats.
//
//	GET /v1/stats
//	    Returns engine counters (checks submitted/solved, cache hits,
//	    dedup hits, cache occupancy) and job counts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync"
	"time"

	"lightyear/internal/config"
	"lightyear/internal/engine"
	"lightyear/internal/netgen"
	"lightyear/internal/topology"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
		cacheSize = flag.Int("cache", 0, "engine result-cache capacity (0 = default, <0 disables)")
	)
	flag.Parse()

	eng := engine.New(engine.Options{Workers: *workers, CacheSize: *cacheSize})
	defer eng.Close()
	srv := newServer(eng)
	log.Printf("lyserve: %s listening on %s (suites: %s)",
		eng, *addr, strings.Join(netgen.SuiteNames(), ", "))
	log.Fatal(http.ListenAndServe(*addr, srv.routes()))
}

// server owns the engine and the in-memory job table.
type server struct {
	eng *engine.Engine

	mu   sync.Mutex
	seq  int
	jobs map[string]*serviceJob
}

func newServer(eng *engine.Engine) *server {
	return &server{eng: eng, jobs: make(map[string]*serviceJob)}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// serviceJob is one POST /v1/verify request: a batch of engine jobs, one
// per problem in the suite.
type serviceJob struct {
	id      string
	suite   string
	created time.Time

	mu       sync.Mutex
	pending  int
	problems []*problemState
}

type problemState struct {
	name       string
	total      int
	completed  int
	skipped    bool   // optional problem not applicable to this network
	failed     bool   // problem could not be submitted; fails the job
	skipReason string // reason for skipped or failed
	report     *engine.ReportJSON
	stats      *engine.JobStats
}

// verifyRequest is the POST /v1/verify body.
type verifyRequest struct {
	Suite     string         `json:"suite"`
	Regions   int            `json:"regions,omitempty"`
	Config    string         `json:"config,omitempty"`
	Generator *generatorSpec `json:"generator,omitempty"`
}

type generatorSpec struct {
	Kind             string `json:"kind"`
	Size             int    `json:"size,omitempty"`
	Regions          int    `json:"regions,omitempty"`
	RoutersPerRegion int    `json:"routers_per_region,omitempty"`
	EdgeRouters      int    `json:"edge_routers,omitempty"`
	DCsPerRegion     int    `json:"dcs_per_region,omitempty"`
	PeersPerEdge     int    `json:"peers_per_edge,omitempty"`
}

// buildNetwork materializes the request's network and the region count the
// WAN suites should assume.
func (r *verifyRequest) buildNetwork() (*topology.Network, int, error) {
	regions := r.Regions
	switch {
	case r.Config != "" && r.Generator != nil:
		return nil, 0, fmt.Errorf("specify either config or generator, not both")
	case r.Config != "":
		n, err := config.Parse(r.Config)
		if err != nil {
			return nil, 0, fmt.Errorf("config: %w", err)
		}
		return n, regions, nil
	case r.Generator != nil:
		g := r.Generator
		switch g.Kind {
		case "fig1":
			return netgen.Fig1(netgen.Fig1Options{}), regions, nil
		case "fullmesh":
			size := g.Size
			if size == 0 {
				size = 10
			}
			if size < 2 {
				return nil, 0, fmt.Errorf("fullmesh size must be >= 2")
			}
			return netgen.FullMesh(size), regions, nil
		case "wan":
			p := netgen.DefaultWANParams()
			if g.Regions > 0 {
				p.Regions = g.Regions
			}
			if g.RoutersPerRegion > 0 {
				p.RoutersPerRegion = g.RoutersPerRegion
			}
			if g.EdgeRouters > 0 {
				p.EdgeRouters = g.EdgeRouters
			}
			if g.DCsPerRegion > 0 {
				p.DCsPerRegion = g.DCsPerRegion
			}
			if g.PeersPerEdge > 0 {
				p.PeersPerEdge = g.PeersPerEdge
			}
			if regions == 0 {
				regions = p.Regions
			}
			return netgen.WAN(p, netgen.WANBugs{}), regions, nil
		default:
			return nil, 0, fmt.Errorf("unknown generator kind %q (fig1|fullmesh|wan)", g.Kind)
		}
	default:
		return nil, 0, fmt.Errorf("one of config or generator is required")
	}
}

func (s *server) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req verifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	suite, ok := netgen.Lookup(req.Suite)
	if !ok {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown suite %q (have: %s)",
			req.Suite, strings.Join(netgen.SuiteNames(), ", ")))
		return
	}
	n, regions, err := req.buildNetwork()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	problems := suite.Build(n, netgen.SuiteParams{Regions: regions})

	j := &serviceJob{suite: suite.Name, created: time.Now()}

	// Submit every problem before waiting on any, so the engine dedups
	// identical checks across the whole suite (and across other live
	// requests sharing this engine). Watchers start only after the job
	// table below is fully built, so no lock is needed here.
	engineJobs := make([]*engine.Job, len(problems))
	for i, p := range problems {
		ps := &problemState{name: p.Name}
		j.problems = append(j.problems, ps)
		switch {
		case p.Safety != nil:
			engineJobs[i] = s.eng.SubmitSafety(p.Safety)
		case p.Liveness != nil:
			ej, err := s.eng.SubmitLiveness(p.Liveness)
			if err != nil {
				if p.Optional {
					ps.skipped = true
					ps.skipReason = err.Error()
				} else {
					ps.failed = true
					ps.skipReason = err.Error()
				}
				continue
			}
			engineJobs[i] = ej
		default:
			ps.failed = true
			ps.skipReason = "suite produced an empty problem"
			continue
		}
		ps.total = engineJobs[i].NumChecks()
		j.pending++
	}

	s.mu.Lock()
	s.seq++
	j.id = fmt.Sprintf("job-%d", s.seq)
	s.jobs[j.id] = j
	s.mu.Unlock()

	for i, ej := range engineJobs {
		if ej != nil {
			go j.watch(j.problems[i], ej)
		}
	}

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{
		"id":         j.id,
		"status_url": "/v1/jobs/" + j.id,
	})
}

// watch drains an engine job's progress stream into the problem state and
// records the final report.
func (j *serviceJob) watch(ps *problemState, ej *engine.Job) {
	for ev := range ej.Progress() {
		j.mu.Lock()
		ps.completed = ev.Completed
		j.mu.Unlock()
	}
	rep := ej.Wait()
	enc := engine.EncodeReport(rep)
	st := ej.Stats()
	j.mu.Lock()
	ps.completed = ps.total
	ps.report = &enc
	ps.stats = &st
	j.pending--
	j.mu.Unlock()
}

// jobJSON is the GET /v1/jobs/{id} response.
type jobJSON struct {
	ID       string            `json:"id"`
	Suite    string            `json:"suite"`
	Status   string            `json:"status"` // running | done
	OK       *bool             `json:"ok,omitempty"`
	Created  time.Time         `json:"created"`
	Problems []problemStatusJS `json:"problems"`
}

type problemStatusJS struct {
	Name       string             `json:"name"`
	Status     string             `json:"status"` // running | done | skipped | failed
	Completed  int                `json:"completed"`
	Total      int                `json:"total"`
	SkipReason string             `json:"skip_reason,omitempty"`
	Report     *engine.ReportJSON `json:"report,omitempty"`
	Stats      *engine.JobStats   `json:"stats,omitempty"`
}

func (j *serviceJob) snapshot() jobJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := jobJSON{ID: j.id, Suite: j.suite, Created: j.created, Status: "done"}
	if j.pending > 0 {
		out.Status = "running"
	}
	allOK := true
	for _, ps := range j.problems {
		st := problemStatusJS{
			Name:       ps.name,
			Completed:  ps.completed,
			Total:      ps.total,
			SkipReason: ps.skipReason,
			Report:     ps.report,
			Stats:      ps.stats,
		}
		switch {
		case ps.failed:
			st.Status = "failed"
			allOK = false
		case ps.skipped:
			st.Status = "skipped"
		case ps.report != nil:
			st.Status = "done"
			if !ps.report.OK {
				allOK = false
			}
		default:
			st.Status = "running"
		}
		out.Problems = append(out.Problems, st)
	}
	if out.Status == "done" {
		out.OK = &allOK
	}
	return out
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, j.snapshot())
}

// statsJSON is the GET /v1/stats response.
type statsJSON struct {
	Engine engine.Stats `json:"engine"`
	Jobs   int          `json:"jobs"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, statsJSON{Engine: s.eng.Stats(), Jobs: jobs})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("lyserve: encode response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
