// Command lyserve is the Lightyear verification service: an HTTP JSON API
// that runs verification jobs asynchronously on a shared internal/engine
// Engine, so concurrent requests dedup identical local checks and reuse the
// process-wide result cache.
//
// Usage:
//
//	lyserve [-addr :8080] [-workers N] [-cache N] [-store DIR] [-store-retain N]
//	        [-job-ttl 1h] [-session-ttl 24h] [-event-window N]
//	        [-max-inflight N] [-tenant-quota N] [-max-queue N]
//	        [-tenant-weights t1=3,t2=1] [-trace-cap N] [-pprof]
//	        [-solver remote:host1:9101,host2:9101]
//
// With -store DIR the engine's result cache is the internal/store
// persistent journal in DIR, so a redeployed lyserve serves previously
// solved checks without re-solving them; -store-retain N keeps only the
// results of the N most recently verified network fingerprints when the
// journal is compacted on startup. Completed jobs are garbage-collected
// -job-ttl after completion (default 1h); sessions idle longer than
// -session-ttl (default 24h; 0 disables) are expired and deleted — an
// update to an expired session is 404, like an explicit DELETE.
// -event-window N (default 4096) bounds the per-job event history retained
// for GET /v2/jobs/{id}/events replay: when a large plan emits more events
// than the window, the oldest are evicted and late subscribers receive a
// single {"type":"truncated","dropped":K} marker in their place.
//
// # Tenancy and admission control
//
// Every request runs as a tenant: the X-Tenant header, the ?tenant= query
// parameter, or the plan's {"options": {"tenant": ...}} field (in that
// precedence), defaulting to "default". The engine accounts each tenant's
// admitted, rejected, queued, and in-flight work (GET /v1/stats →
// engine.tenants) and dispatches admitted workloads weighted-fair across
// tenants, so one tenant flooding the service cannot starve another.
//
// -max-inflight bounds the total in-flight checks across tenants,
// -tenant-quota the in-flight checks per tenant, and -max-queue the
// backlog of workloads awaiting dispatch (each 0 = unlimited). A plan is
// admitted as one unit — its compiled check count (plan.Compiled.Cost) is
// reserved up front — and a rejected plan is answered synchronously with
// HTTP 429, a Retry-After header (seconds), and a JSON body carrying the
// tenant, cost, violated limit, and retry_after_ms; nothing of a rejected
// plan is enqueued. A body with "permanent": true marks a plan whose cost
// exceeds the limit outright — retrying at that size can never succeed;
// split the plan or raise the limit. Session baselines and updates are admitted the same
// way inside the session worker (an over-quota update fails the run with
// the admission error in its status); session creation prechecks the
// baseline cost and answers 429 early when it cannot be admitted. Session
// updates and deletion require the caller's tenant to match the session's
// (403 otherwise) — mutations run under, and are charged to, the session
// tenant's quota.
//
// # v2 API — declarative verification plans
//
// The v2 surface accepts internal/plan requests: one document composing a
// network source, a list of properties (each optionally scoped to routers
// or regions), and execution options. All request bodies are capped at
// 1 MiB (413 beyond that).
//
//	POST /v2/verify
//	    Body: a plan.Request, e.g.
//	      {"network":    {"generator": {"kind": "wan", "regions": 2}},
//	       "properties": [{"name": "wan-peering", "routers": ["edge-0"]},
//	                      {"name": "wan-ip-reuse"}],
//	       "options":    {"wan_regions": 2,
//	                      "solver": {"backend": "portfolio"}}}
//	    The network source is one of "config" (inline DSL), "generator",
//	    or "baseline" (a session id whose pinned network to verify).
//	    Returns 202 with {"id", "status_url", "events_url"}. All properties
//	    run as one plan on the shared engine, so checks shared across
//	    properties are solved once. The optional "solver" option routes the
//	    request's checks to a solver backend ("native", "portfolio", or
//	    "tiered", optionally with a conflict "budget") — a per-job routing
//	    decision on the shared engine, so concurrent tenants may use
//	    different backends. Checks whose budget ran out report status
//	    "unknown", distinct from "fail".
//
//	GET /v2/jobs/{id}
//	    The job grouped per property: status, per-problem completion, and —
//	    once complete — each property's problem reports plus aggregated
//	    cache/dedup stats.
//
//	GET /v2/jobs/{id}/events
//	    NDJSON stream of the run's progress events: a "start" event per
//	    problem as it is submitted (with its check total), one "check"
//	    event per completed engine check (with cache/dedup provenance and
//	    its ok/fail/unknown status), a "problem" event per finished problem
//	    (with its stats), a "property" summary event each, and a final
//	    "plan" event, after which the stream closes. Events already emitted
//	    are replayed first, so late subscribers see the full history (or,
//	    past the -event-window, a truncation marker followed by the
//	    retained suffix).
//
//	POST /v2/sessions
//	    Body: a plan.Request. Pins the request's network as an incremental
//	    session baseline and verifies the full (scoped) property list.
//	    Updates inherit the plan's properties and scoping.
//
//	POST /v2/sessions/{id}/update
//	    Body: {"network": <plan network source>}. Diffs the new network
//	    against the pinned state and re-solves only dirtied checks.
//
//	POST /v2/sessions/{id}/migrate
//	    Body: {"steps": [...], "unordered": bool, "search_budget": N} — a
//	    migration plan (internal/migrate) whose baseline, properties, and
//	    options are the session's. Each step is {"label", "config"} (a full
//	    replacement network) or {"label", "mutation"} (a serializable config
//	    edit applied to the previous state). The response is a synchronous
//	    NDJSON stream of step-indexed events (step_started, problem, check,
//	    step_ok, step_violated, order_found, order_infeasible, then done
//	    with the full result, or error): every intermediate state is
//	    verified as an incremental delta on the session's verifier, and the
//	    stream reports the first violating step with its failing checks and
//	    witnesses. With "unordered": true the steps are an unordered change
//	    set and the run searches for a safe ordering (events carry
//	    "search": true while exploring). The whole plan is admitted as one
//	    reservation up front (429 before the first step if over quota). On
//	    success the final state becomes the session's pinned baseline —
//	    follow-up updates delta against the migrated network; on violation,
//	    infeasibility, or error the original pinned state is restored. The
//	    plan also appears in the session's run history ("migrate": true,
//	    with its result) for later GETs.
//
//	GET /v2/sessions/{id}, DELETE /v2/sessions/{id}
//	    As in v1.
//
// # v1 API — single-suite requests
//
// The v1 endpoints keep their original request and response shapes,
// implemented as adapters that compile each request into a single-property
// plan.
//
//	POST /v1/verify
//	    Body: {"suite": "<suite>", "regions": N,
//	           "config": "<internal/config DSL source>"} or
//	          {"suite": "<suite>",
//	           "generator": {"kind": "fig1" | "fullmesh" | "wan", ...}}
//	    Suites are the names in the internal/netgen registry. Returns 202
//	    with {"id": "...", "status_url": "/v1/jobs/<id>"}.
//
//	GET /v1/jobs/{id}
//	    The flat per-problem view: overall status (running|done),
//	    per-problem completion counts, and — once complete — each problem's
//	    report in the same JSON encoding `lightyear -json` emits.
//
//	GET /v1/stats
//	    Engine counters (including per-solver-backend counters: solved,
//	    unknown, variants raced, tiered escalations, solve time), job and
//	    session counts, and — with -store — persistent-store counters.
//
//	POST /v1/sessions, POST /v1/sessions/{id}/update,
//	GET /v1/sessions/{id}, DELETE /v1/sessions/{id}
//	    Incremental sessions pinned to one suite, as before.
//
// # Observability
//
// The service always runs with an internal/telemetry recorder: the engine,
// admission layer, solver backends, result cache, and persistent store all
// emit into it.
//
//	GET /metrics
//	    Prometheus text exposition (version 0.0.4): lightyear_* counters,
//	    histograms (solve time per backend, queue wait), and gauges
//	    (in-flight cost, queue depth, cache occupancy and hit ratio, store
//	    journal size).
//
//	GET /v1/traces[?limit=N]
//	    The most recent completed workload traces, newest first, from the
//	    recorder's bounded ring (-trace-cap entries).
//
//	GET /v1/traces/{id}
//	    One completed trace as a span tree (compile, admit, queue,
//	    dispatch, solve:<backend>, cache, store), with per-span offsets,
//	    durations, and attributes.
//
// Every verification request is traced end to end: POST /v1/verify and
// POST /v2/verify answer with an X-Trace-Id header (and a trace_id field
// in the 202 body and job snapshots), every NDJSON event of the run
// carries the same trace_id, and once the run completes the trace is
// retrievable at /v1/traces/{id}.
//
// -tenant-weights t1=3,t2=1 sets per-tenant weighted-fair dispatch weights
// (unlisted tenants weigh 1). -pprof additionally mounts the standard
// net/http/pprof handlers under /debug/pprof/ — off by default since the
// profiles can leak operational detail.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"lightyear/internal/config"
	"lightyear/internal/corpus"
	"lightyear/internal/delta"
	"lightyear/internal/engine"
	"lightyear/internal/fabric"
	"lightyear/internal/logging"
	"lightyear/internal/migrate"
	"lightyear/internal/netgen"
	"lightyear/internal/plan"
	"lightyear/internal/solver"
	"lightyear/internal/store"
	"lightyear/internal/telemetry"
	"lightyear/internal/topology"
)

// srvLog is the service's structured logger; main replaces it with the one
// -log-level/-log-format configure. The default routes through slog's
// process default so in-test servers still log somewhere sensible.
var srvLog = logging.Component(slog.Default(), "lyserve")

// defaultJobTTL is how long completed jobs stay queryable before GC.
const defaultJobTTL = time.Hour

// defaultSessionTTL is how long an idle session (no queued or running
// work, no recent run) survives before GC.
const defaultSessionTTL = 24 * time.Hour

// defaultEventWindow is the per-job event-history bound (-event-window).
const defaultEventWindow = 4096

// maxRequestBody caps every JSON request body read by the service.
const maxRequestBody = 1 << 20 // 1 MiB

// defaultShutdownGrace bounds how long a SIGINT/SIGTERM shutdown waits for
// in-flight requests (including NDJSON event streams) to drain.
const defaultShutdownGrace = 15 * time.Second

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
		cacheSize   = flag.Int("cache", 0, "engine result-cache capacity (0 = default, <0 disables; ignored with -store)")
		storeDir    = flag.String("store", "", "persistent result-store directory (replaces the in-memory cache)")
		storeRetain = flag.Int("store-retain", 0, "keep only the N most recently written network fingerprints in the store (0 = all)")
		jobTTL      = flag.Duration("job-ttl", defaultJobTTL, "retention of completed jobs")
		sessTTL     = flag.Duration("session-ttl", defaultSessionTTL, "expiry of idle sessions (0 = never)")
		evWindow    = flag.Int("event-window", defaultEventWindow, "per-job event-history entries retained for /events replay (<=0 = unbounded)")
		maxInflight = flag.Int("max-inflight", 0, "admission: max in-flight checks across all tenants (0 = unlimited)")
		tenantQuota = flag.Int("tenant-quota", 0, "admission: max in-flight checks per tenant (0 = unlimited)")
		maxQueue    = flag.Int("max-queue", 0, "admission: max workloads awaiting dispatch (0 = unlimited)")
		weightsSpec = flag.String("tenant-weights", "", "per-tenant dispatch weights, e.g. t1=3,t2=1 (unlisted tenants weigh 1)")
		traceCap    = flag.Int("trace-cap", 0, "completed traces retained for /v1/traces (0 = default)")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		solverSpec  = flag.String("solver", "", "default solver backend: native, portfolio, or tiered as backend[:budget], or remote:host1,host2 for a worker fleet")
		slowConf    = flag.Int64("slow-conflicts", 0, "log any check burning at least this many CDCL conflicts (0 = default, <0 disables)")
		slowTime    = flag.Duration("slow-solve", 0, "log any check spending at least this long in the solver (0 = default, <0 disables)")
		grace       = flag.Duration("shutdown-grace", defaultShutdownGrace, "max wait for in-flight requests to drain on SIGINT/SIGTERM")
	)
	var logCfg logging.Config
	logCfg.RegisterFlags(flag.CommandLine, "json")
	flag.Parse()

	logger, err := logCfg.Build(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lyserve: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)
	srvLog = logging.Component(logger, "lyserve")

	weights, err := engine.ParseWeights(*weightsSpec)
	if err != nil {
		srvLog.Error("bad -tenant-weights", slog.Any("error", err))
		os.Exit(1)
	}
	rec := telemetry.New(*traceCap)
	// Remote solver backends (the -solver flag or per-request solver specs)
	// report into the same sinks as the engine.
	fabric.SetTelemetry(rec)
	fabric.SetLogger(logger)
	// Corpus network sources (plan documents with "corpus") count their
	// generations into the same /metrics recorder.
	corpus.SetTelemetry(rec)
	opts := engine.Options{
		Workers:   *workers,
		CacheSize: *cacheSize,
		Telemetry: rec,
		Logger:    logger,
		SlowCheck: engine.SlowCheckPolicy{Conflicts: *slowConf, SolveTime: *slowTime},
		Admission: engine.Admission{
			MaxInFlightChecks: *maxInflight,
			PerTenantQuota:    *tenantQuota,
			MaxQueueDepth:     *maxQueue,
			Weights:           weights,
		},
	}
	if *solverSpec != "" {
		spec, err := solver.ParseSpec(*solverSpec)
		if err != nil {
			srvLog.Error("bad -solver", slog.Any("error", err))
			os.Exit(1)
		}
		b, err := solver.New(spec)
		if err != nil {
			srvLog.Error("bad -solver", slog.Any("error", err))
			os.Exit(1)
		}
		opts.Backend = b
		srvLog.Info("default solver backend", slog.String("solver", spec.String()))
	}
	var st *store.Store
	if *storeDir != "" {
		st, err = store.OpenOptions(*storeDir, store.Options{MaxFingerprints: *storeRetain})
		if err != nil {
			srvLog.Error("store open failed", slog.String("dir", *storeDir), slog.Any("error", err))
			os.Exit(1)
		}
		st.SetTelemetry(rec)
		st.SetLogger(logger)
		srvLog.Info("store opened",
			slog.String("dir", *storeDir),
			slog.Int("results", st.Len()),
			slog.Int("evicted", st.Stats().Evicted))
		opts.Cache = st
	}
	eng := engine.New(opts)
	srv := newServer(eng)
	srv.store = st
	srv.ttl = *jobTTL
	srv.sessionTTL = *sessTTL
	srv.eventWindow = *evWindow
	srv.pprof = *pprofOn
	go srv.janitor()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	srvLog.Info("listening",
		slog.String("addr", *addr),
		slog.String("engine", eng.String()),
		slog.String("suites", strings.Join(netgen.SuiteNames(), ", ")))

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting connections, wake
	// every NDJSON event stream so it flushes and closes, wait up to the
	// grace period for in-flight requests, then close the engine (draining
	// admitted jobs) and flush the store journal.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		srvLog.Error("server failed", slog.Any("error", err))
		os.Exit(1)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills immediately
		srvLog.Info("shutdown signal received", slog.Duration("grace", *grace))
	}
	srv.beginShutdown()
	sctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		srvLog.Warn("shutdown grace period expired with requests in flight", slog.Any("error", err))
	}
	eng.Close()
	if st != nil {
		if err := st.Close(); err != nil {
			srvLog.Warn("store close failed", slog.Any("error", err))
		}
	}
	srvLog.Info("shutdown complete")
}

// server owns the engine and the in-memory job and session tables.
type server struct {
	eng         *engine.Engine
	rec         *telemetry.Recorder // the engine's recorder; nil disables /metrics and traces
	store       *store.Store        // nil without -store; provenance tagging only
	ttl         time.Duration       // completed-job retention
	sessionTTL  time.Duration       // idle-session expiry (0 = never)
	eventWindow int                 // per-job event-history bound (<=0 = unbounded)
	pprof       bool                // mount /debug/pprof/ handlers

	started time.Time // process start, for /v1/status uptime

	// shutdown is closed once when graceful shutdown begins: NDJSON event
	// streams flush and close, and the janitor exits.
	shutdown     chan struct{}
	shutdownOnce sync.Once

	mu       sync.Mutex
	seq      int
	jobs     map[string]*serviceJob
	sseq     int
	sessions map[string]*session
}

func newServer(eng *engine.Engine) *server {
	return &server{
		eng:         eng,
		rec:         eng.Telemetry(),
		ttl:         defaultJobTTL,
		sessionTTL:  defaultSessionTTL,
		eventWindow: defaultEventWindow,
		started:     time.Now(),
		shutdown:    make(chan struct{}),
		jobs:        make(map[string]*serviceJob),
		sessions:    make(map[string]*session),
	}
}

// beginShutdown signals every long-lived handler and the janitor that the
// process is draining. Safe to call more than once.
func (s *server) beginShutdown() {
	s.shutdownOnce.Do(func() { close(s.shutdown) })
}

// requestTenant resolves the tenant a request runs as: the X-Tenant
// header, then the ?tenant= query parameter, then the tenant named in the
// request body (a plan's options), then the engine default. The transport
// identity wins over the body so a gateway-asserted header cannot be
// overridden by request content.
func requestTenant(r *http.Request, bodyTenant string) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	if bodyTenant != "" {
		return bodyTenant
	}
	return engine.DefaultTenant
}

// admissionError answers an engine admission rejection as HTTP 429 with a
// Retry-After header (whole seconds, rounded up) and a JSON body carrying
// the typed fields, then reports true. Non-admission errors report false.
func admissionError(w http.ResponseWriter, err error) bool {
	var adm *engine.ErrAdmission
	if !errors.As(err, &adm) {
		return false
	}
	secs := int(adm.RetryAfter.Seconds())
	if adm.RetryAfter > time.Duration(secs)*time.Second {
		secs++ // round up so clients never retry early
	}
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	body := map[string]any{
		"error":          adm.Error(),
		"tenant":         adm.Tenant,
		"cost":           adm.Cost,
		"limit":          adm.Limit,
		"reason":         adm.Reason,
		"retry_after_ms": adm.RetryAfter.Milliseconds(),
	}
	if adm.Permanent {
		// The cost exceeds the limit outright: retrying at this cost can
		// never succeed — clients should split the request, not back off.
		body["permanent"] = true
	}
	json.NewEncoder(w).Encode(body)
	return true
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/verify", s.handleVerifyV1)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobV1)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/sessions", s.handleSessionCreateV1)
	mux.HandleFunc("POST /v1/sessions/{id}/update", s.handleSessionUpdateV1)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)

	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/traces/{id}", s.handleTrace)

	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/status", s.handleStatus)

	mux.HandleFunc("POST /v2/verify", s.handleVerifyV2)
	mux.HandleFunc("GET /v2/jobs/{id}", s.handleJobV2)
	mux.HandleFunc("GET /v2/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("POST /v2/sessions", s.handleSessionCreateV2)
	mux.HandleFunc("POST /v2/sessions/{id}/update", s.handleSessionUpdateV2)
	mux.HandleFunc("POST /v2/sessions/{id}/migrate", s.handleSessionMigrate)
	mux.HandleFunc("GET /v2/sessions/{id}", s.handleSessionGet)
	mux.HandleFunc("DELETE /v2/sessions/{id}", s.handleSessionDelete)

	if s.pprof {
		// Opt-in: profiles expose operational detail, so the handlers are
		// mounted only under -pprof.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleMetrics serves the Prometheus text exposition of the process
// recorder.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		httpError(w, http.StatusNotFound, "telemetry disabled")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.rec.WriteMetrics(w); err != nil {
		srvLog.Warn("write metrics failed", slog.Any("error", err))
	}
}

// handleTraces serves the recorder's retained completed traces, newest
// first; ?limit=N caps the count.
func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		httpError(w, http.StatusNotFound, "telemetry disabled")
		return
	}
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		limit = n
	}
	traces := s.rec.Traces(limit)
	writeJSON(w, map[string]any{"count": len(traces), "traces": traces})
}

// handleTrace serves one completed trace by ID (the X-Trace-Id a verify
// request answered with).
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		httpError(w, http.StatusNotFound, "telemetry disabled")
		return
	}
	snap, ok := s.rec.Trace(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such trace (not finished yet, or evicted from the ring)")
		return
	}
	writeJSON(w, snap)
}

// decodeBody decodes a JSON request body capped at maxRequestBody,
// answering 413 for oversized bodies and 400 for malformed ones. Returns
// false when the request has been answered.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
		} else {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		}
		return false
	}
	return true
}

// rejectConfigPath enforces the service's filesystem boundary: plan network
// sources may name server-local files only through the CLI, never over
// HTTP (a remote config_path would let callers probe and partially read
// any server-readable file via echoed parse errors). Answers 400 and
// returns false when the source uses config_path.
func rejectConfigPath(w http.ResponseWriter, ns plan.Network) bool {
	if ns.ConfigPath != "" {
		httpError(w, http.StatusBadRequest,
			"config_path is not supported over HTTP; inline the configuration as \"config\"")
		return false
	}
	return true
}

// ResolveBaseline implements plan.Resolver: a "baseline" network reference
// names a session whose pinned state becomes the plan's network, verified
// under the session's WAN region count unless the plan overrides it.
func (s *server) ResolveBaseline(ref string) (*topology.Network, int, error) {
	s.mu.Lock()
	sess, ok := s.sessions[ref]
	s.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("baseline %q names no live session", ref)
	}
	n := sess.verifier.PinnedNetwork()
	if n == nil {
		return nil, 0, fmt.Errorf("session %q has not pinned a baseline yet", ref)
	}
	return n, sess.plan.Params.Regions, nil
}

// janitor periodically drops completed jobs older than the job TTL and
// sessions idle longer than the session TTL. It runs for the life of the
// process; the sweep interval tracks the shorter of the two TTLs so a
// tight -session-ttl is honored even under the default hour-long -job-ttl.
func (s *server) janitor() {
	interval := s.ttl / 10
	if s.sessionTTL > 0 && s.sessionTTL/10 < interval {
		interval = s.sessionTTL / 10
	}
	if interval < time.Second {
		interval = time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case now := <-tick.C:
			s.gc(now)
		case <-s.shutdown:
			return
		}
	}
}

// gc removes jobs that completed before now-jobTTL, and expires sessions
// whose last activity (creation, queued update, or completed run) is older
// than now-sessionTTL. Running jobs and sessions with queued or running
// work are never collected. Returns jobs removed + sessions expired.
func (s *server) gc(now time.Time) int {
	cutoff := now.Add(-s.ttl)
	s.mu.Lock()
	removed := 0
	for id, j := range s.jobs {
		if done, at := j.doneAt(); done && at.Before(cutoff) {
			delete(s.jobs, id)
			removed++
		}
	}
	var expired []*session
	if s.sessionTTL > 0 {
		sessCutoff := now.Add(-s.sessionTTL)
		for id, sess := range s.sessions {
			// expireIfIdle marks the session closed atomically with the
			// idleness check, so an update racing this sweep either lands
			// before it (the session is no longer idle and survives) or is
			// refused by launch() — never accepted and then dropped.
			if sess.expireIfIdle(sessCutoff) {
				delete(s.sessions, id)
				expired = append(expired, sess)
			}
		}
	}
	s.mu.Unlock()
	for _, sess := range expired {
		sess.close() // releases the worker; closed was already set
		srvLog.Info("session expired",
			slog.String("session", sess.id),
			slog.String(logging.KeyTenant, sess.tenant),
			slog.Duration("idle_beyond", s.sessionTTL))
	}
	return removed + len(expired)
}

// serviceJob is one verification request running as a plan: per-property,
// per-problem state updated from the run's event stream, the ordered event
// log served by GET /v2/jobs/{id}/events, and the final result.
type serviceJob struct {
	id      string
	label   string // v1 suite name, or the plan's property list
	tenant  string // tenant the plan was admitted under
	cost    int    // admission cost (the plan's compiled check count)
	traceID string // the run's telemetry trace ("" without a recorder)
	created time.Time
	window  int // event-history bound (<=0 = unbounded)

	mu       sync.Mutex
	props    []*propertyState
	events   []plan.Event
	dropped  int           // events evicted from the front of the history
	notify   chan struct{} // closed and replaced whenever events/finished change
	finished bool
	done     time.Time
	errMsg   string // run error (admission race); job reports failed
	result   *plan.Result
}

type propertyState struct {
	property plan.Property
	problems []*problemState
}

type problemState struct {
	name       string
	total      int
	completed  int
	skipped    bool   // optional problem not applicable to this network
	failed     bool   // problem could not be submitted; fails the job
	skipReason string // reason for skipped or failed
	report     *engine.ReportJSON
	stats      *engine.JobStats
	ok         bool
}

// doneAt reports whether the job has completed and when.
func (j *serviceJob) doneAt() (bool, time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finished, j.done
}

// launchPlan registers a job for the compiled plan — already admitted via
// resv, which the run takes ownership of — and starts it on the shared
// engine. tr is the trace the handler opened for the request (nil without
// a recorder); the run records into it and finishes it.
func (s *server) launchPlan(c *plan.Compiled, label string, resv *engine.Reservation, tr *telemetry.Trace) *serviceJob {
	j := &serviceJob{
		label:   label,
		tenant:  engine.NormalizeTenant(c.Tenant()),
		cost:    c.Cost(),
		traceID: tr.ID(),
		created: time.Now(),
		window:  s.eventWindow,
		notify:  make(chan struct{}),
	}
	for _, u := range c.Units {
		ps := &propertyState{property: u.Property}
		for _, p := range u.Problems {
			ps.problems = append(ps.problems, &problemState{name: p.Name})
		}
		j.props = append(j.props, ps)
	}
	s.mu.Lock()
	s.seq++
	j.id = fmt.Sprintf("job-%d", s.seq)
	s.jobs[j.id] = j
	s.mu.Unlock()

	go func() {
		res, err := plan.Run(s.eng, c, plan.RunConfig{Sink: j.handleEvent, Store: s.store, Reservation: resv, Trace: tr})
		errMsg := ""
		if err != nil {
			// The handler reserved admission for the whole plan, and only
			// delta-mode plans error otherwise; record defensively rather
			// than wedge the job.
			srvLog.Error("plan run failed",
				slog.String(logging.KeyJob, j.id),
				slog.String(logging.KeyTenant, j.tenant),
				slog.String(logging.KeyTraceID, j.traceID),
				slog.Any("error", err))
			errMsg = err.Error()
			res = &plan.Result{}
		}
		j.mu.Lock()
		j.result = res
		j.errMsg = errMsg
		j.finished = true
		j.done = time.Now()
		close(j.notify)
		j.notify = make(chan struct{})
		j.mu.Unlock()
	}()
	return j
}

// handleEvent is the plan.Run sink: it appends the event to the replay log,
// folds it into the per-problem state, and wakes streaming watchers. Calls
// are serialized by plan.Run.
func (j *serviceJob) handleEvent(ev plan.Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if ev.Type == "start" || ev.Type == "check" || ev.Type == "problem" {
		if ev.Prop < len(j.props) && ev.Idx < len(j.props[ev.Prop].problems) {
			ps := j.props[ev.Prop].problems[ev.Idx]
			switch ev.Type {
			case "start":
				ps.total = ev.Total
			case "check":
				ps.completed, ps.total = ev.Completed, ev.Total
			case "problem":
				ps.skipped, ps.failed, ps.skipReason = ev.Skipped, ev.Failed, ev.Reason
				if ev.OK != nil {
					ps.ok = *ev.OK
				}
				if ev.Stats != nil {
					ps.stats = ev.Stats
					ps.completed, ps.total = ev.Stats.Checks, ev.Stats.Checks
				}
			}
		}
	}
	j.events = append(j.events, ev)
	if j.window > 0 && len(j.events) > j.window {
		// Bound the replay history: evict the oldest events and remember how
		// many, so late subscribers get a truncation marker instead of the
		// missing prefix. Live subscribers past the eviction point are
		// unaffected (their cursor is absolute).
		evict := len(j.events) - j.window
		j.events = j.events[evict:]
		j.dropped += evict
	}
	close(j.notify)
	j.notify = make(chan struct{})
}

// fillReports copies the final per-problem reports out of the plan result
// into the snapshot state. Called lazily from snapshots (the result carries
// the reports; events deliberately do not).
func (j *serviceJob) fillReports() {
	if j.result == nil {
		return
	}
	for pi, pr := range j.result.Properties {
		for i := range pr.Problems {
			if pi < len(j.props) && i < len(j.props[pi].problems) {
				j.props[pi].problems[i].report = pr.Problems[i].ReportJSON
			}
		}
	}
}

// verifyRequest is the POST /v1/verify body (and session create/update
// bodies): one suite plus a network source.
type verifyRequest struct {
	Suite     string                `json:"suite"`
	Regions   int                   `json:"regions,omitempty"`
	Config    string                `json:"config,omitempty"`
	Generator *netgen.GeneratorSpec `json:"generator,omitempty"`
	Tenant    string                `json:"tenant,omitempty"`
	Priority  int                   `json:"priority,omitempty"`
}

// planRequest compiles the v1 body into a single-property plan request.
func (r *verifyRequest) planRequest() plan.Request {
	return plan.Request{
		Network:    plan.Network{Config: r.Config, Generator: r.Generator},
		Properties: []plan.Property{{Name: r.Suite}},
		Options:    plan.Options{WANRegions: r.Regions, Tenant: r.Tenant, Priority: r.Priority},
	}
}

// compileV1 validates and compiles a v1 request, answering 400 on error.
func (s *server) compileV1(w http.ResponseWriter, req *verifyRequest) (*plan.Compiled, bool) {
	if _, ok := netgen.Lookup(req.Suite); !ok {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown suite %q (have: %s)",
			req.Suite, strings.Join(netgen.SuiteNames(), ", ")))
		return nil, false
	}
	c, err := plan.Compile(req.planRequest(), s)
	if err != nil {
		httpError(w, http.StatusBadRequest, strings.TrimPrefix(err.Error(), "plan: "))
		return nil, false
	}
	return c, true
}

// reservePlan admits the compiled plan as one unit against the engine,
// answering 429 + Retry-After on rejection. The caller owns the returned
// reservation (plan.Run releases it).
func (s *server) reservePlan(w http.ResponseWriter, c *plan.Compiled) (*engine.Reservation, bool) {
	resv, err := s.eng.Reserve(c.Tenant(), c.Cost())
	if err != nil {
		if !admissionError(w, err) {
			httpError(w, http.StatusInternalServerError, err.Error())
		}
		return nil, false
	}
	return resv, true
}

// startRequestTrace opens the request's end-to-end trace on the process
// recorder (nil without one) and runs fn — the compilation step — under a
// "compile" span. The trace ID is handed back to the client before the
// asynchronous run starts.
func (s *server) startRequestTrace(label, tenant string, fn func() bool) (*telemetry.Trace, bool) {
	tr := s.rec.StartTrace(label, engine.NormalizeTenant(tenant))
	cs := tr.StartSpan("compile")
	ok := fn()
	if !ok {
		cs.SetAttr("error", "true")
	}
	cs.End()
	if !ok {
		tr.Finish()
	}
	return tr, ok
}

// admitTraced wraps the plan reservation in an "admit" span; a rejected
// plan's trace is finished here with the rejection recorded.
func (s *server) admitTraced(w http.ResponseWriter, c *plan.Compiled, tr *telemetry.Trace) (*engine.Reservation, bool) {
	as := tr.StartSpan("admit")
	as.SetAttrInt("cost", int64(c.Cost()))
	resv, ok := s.reservePlan(w, c)
	if !ok {
		as.SetAttr("rejected", "true")
	}
	as.End()
	if !ok {
		tr.Finish()
	}
	return resv, ok
}

// accepted answers 202 with the job's URLs and trace ID, echoing the trace
// in an X-Trace-Id header.
func accepted(w http.ResponseWriter, j *serviceJob, urls map[string]string) {
	body := map[string]string{"id": j.id}
	for k, v := range urls {
		body[k] = v
	}
	if j.traceID != "" {
		body["trace_id"] = j.traceID
		w.Header().Set("X-Trace-Id", j.traceID)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(body)
}

func (s *server) handleVerifyV1(w http.ResponseWriter, r *http.Request) {
	var req verifyRequest
	if !decodeBody(w, r, &req) {
		return
	}
	req.Tenant = requestTenant(r, req.Tenant)
	var c *plan.Compiled
	var ok bool
	tr, ok := s.startRequestTrace("v1:"+req.Suite, req.Tenant, func() bool {
		c, ok = s.compileV1(w, &req)
		return ok
	})
	if !ok {
		return
	}
	resv, ok := s.admitTraced(w, c, tr)
	if !ok {
		return
	}
	j := s.launchPlan(c, req.Suite, resv, tr)
	accepted(w, j, map[string]string{"status_url": "/v1/jobs/" + j.id})
}

func (s *server) handleVerifyV2(w http.ResponseWriter, r *http.Request) {
	var req plan.Request
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Options.Baseline != nil {
		httpError(w, http.StatusBadRequest,
			"options.baseline is not supported on /v2/verify; use sessions for incremental runs")
		return
	}
	if !rejectConfigPath(w, req.Network) {
		return
	}
	req.Options.Tenant = requestTenant(r, req.Options.Tenant)
	var c *plan.Compiled
	tr, ok := s.startRequestTrace("plan", req.Options.Tenant, func() bool {
		var err error
		c, err = plan.Compile(req, s)
		if err != nil {
			httpError(w, http.StatusBadRequest, strings.TrimPrefix(err.Error(), "plan: "))
			return false
		}
		return true
	})
	if !ok {
		return
	}
	tr.SetLabel(c.Label())
	resv, ok := s.admitTraced(w, c, tr)
	if !ok {
		return
	}
	j := s.launchPlan(c, c.Label(), resv, tr)
	accepted(w, j, map[string]string{
		"status_url": "/v2/jobs/" + j.id,
		"events_url": "/v2/jobs/" + j.id + "/events",
	})
}

// jobJSON is the GET /v1/jobs/{id} response: the flat single-suite view.
type jobJSON struct {
	ID       string            `json:"id"`
	Suite    string            `json:"suite"`
	Tenant   string            `json:"tenant,omitempty"`
	TraceID  string            `json:"trace_id,omitempty"`
	Cost     int               `json:"cost,omitempty"` // admitted check count
	Status   string            `json:"status"`         // running | done
	OK       *bool             `json:"ok,omitempty"`
	Error    string            `json:"error,omitempty"`
	Created  time.Time         `json:"created"`
	Problems []problemStatusJS `json:"problems"`
}

type problemStatusJS struct {
	Name       string             `json:"name"`
	Status     string             `json:"status"` // running | done | skipped | failed
	Completed  int                `json:"completed"`
	Total      int                `json:"total"`
	SkipReason string             `json:"skip_reason,omitempty"`
	Report     *engine.ReportJSON `json:"report,omitempty"`
	Stats      *engine.JobStats   `json:"stats,omitempty"`
}

func (ps *problemState) statusJS() problemStatusJS {
	st := problemStatusJS{
		Name:       ps.name,
		Completed:  ps.completed,
		Total:      ps.total,
		SkipReason: ps.skipReason,
		Report:     ps.report,
		Stats:      ps.stats,
	}
	switch {
	case ps.failed:
		st.Status = "failed"
	case ps.skipped:
		st.Status = "skipped"
	case ps.stats != nil:
		st.Status = "done"
	default:
		st.Status = "running"
	}
	return st
}

func (j *serviceJob) snapshotV1() jobJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.fillReports()
	out := jobJSON{ID: j.id, Suite: j.label, Tenant: j.tenant, TraceID: j.traceID,
		Cost: j.cost, Error: j.errMsg, Created: j.created, Status: "running"}
	allOK := true
	for _, prop := range j.props {
		for _, ps := range prop.problems {
			st := ps.statusJS()
			if st.Status == "failed" || (st.Status == "done" && !ps.ok) {
				allOK = false
			}
			out.Problems = append(out.Problems, st)
		}
	}
	if j.finished {
		out.Status = "done"
		if j.result != nil {
			allOK = j.result.OK
		}
		out.OK = &allOK
	}
	return out
}

// jobV2JSON is the GET /v2/jobs/{id} response: the plan view, grouped per
// property.
type jobV2JSON struct {
	ID         string             `json:"id"`
	Label      string             `json:"label"`
	Tenant     string             `json:"tenant,omitempty"`
	TraceID    string             `json:"trace_id,omitempty"`
	Cost       int                `json:"cost,omitempty"` // admitted check count
	Status     string             `json:"status"`         // running | done
	OK         *bool              `json:"ok,omitempty"`
	Error      string             `json:"error,omitempty"`
	Created    time.Time          `json:"created"`
	Properties []propertyStatusJS `json:"properties"`
	Engine     *engine.Stats      `json:"engine,omitempty"`
}

type propertyStatusJS struct {
	Property plan.Property     `json:"property"`
	OK       *bool             `json:"ok,omitempty"`
	Stats    *engine.JobStats  `json:"stats,omitempty"`
	Problems []problemStatusJS `json:"problems"`
}

func (j *serviceJob) snapshotV2() jobV2JSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.fillReports()
	out := jobV2JSON{ID: j.id, Label: j.label, Tenant: j.tenant, TraceID: j.traceID,
		Cost: j.cost, Error: j.errMsg, Created: j.created, Status: "running"}
	for pi, prop := range j.props {
		ps := propertyStatusJS{Property: prop.property}
		for _, pb := range prop.problems {
			ps.Problems = append(ps.Problems, pb.statusJS())
		}
		if j.result != nil && pi < len(j.result.Properties) {
			pr := j.result.Properties[pi]
			ok := pr.OK
			st := pr.Stats
			ps.OK, ps.Stats = &ok, &st
		}
		out.Properties = append(out.Properties, ps)
	}
	if j.finished {
		out.Status = "done"
		if j.result != nil {
			ok := j.result.OK
			out.OK = &ok
			eng := j.result.Engine
			out.Engine = &eng
		}
	}
	return out
}

func (s *server) lookupJob(w http.ResponseWriter, r *http.Request) (*serviceJob, bool) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return nil, false
	}
	return j, true
}

func (s *server) handleJobV1(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookupJob(w, r); ok {
		writeJSON(w, j.snapshotV1())
	}
}

func (s *server) handleJobV2(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookupJob(w, r); ok {
		writeJSON(w, j.snapshotV2())
	}
}

// handleJobEvents streams the job's plan events as NDJSON: the retained
// history so far, then live events until the final "plan" event closes the
// stream. The cursor is an absolute event index; when the job's bounded
// history (-event-window) has already evicted events the subscriber has not
// seen, a single {"type":"truncated","dropped":K} marker is emitted in
// their place.
func (s *server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	idx := 0 // absolute index of the next event to deliver
	for {
		j.mu.Lock()
		gap := 0
		if idx < j.dropped {
			gap = j.dropped - idx
			idx = j.dropped
		}
		pendingEvents := j.events[idx-j.dropped:] // elements are immutable once appended
		notify := j.notify
		finished := j.finished
		j.mu.Unlock()

		if gap > 0 {
			marker := plan.Event{Type: "truncated", Dropped: gap,
				Reason: "event window exceeded; earlier events evicted"}
			if err := enc.Encode(marker); err != nil {
				return
			}
		}
		for _, ev := range pendingEvents {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		idx += len(pendingEvents)
		if (gap > 0 || len(pendingEvents) > 0) && canFlush {
			flusher.Flush()
		}
		// finished and events were read under one lock hold: once finished,
		// the log is complete, and everything up to idx has been delivered.
		if finished {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-s.shutdown:
			// Graceful shutdown: everything retained so far has been
			// delivered and flushed above; close the stream so
			// http.Server.Shutdown can finish draining connections.
			return
		}
	}
}

// session is one incremental verification session: a pinned delta.Verifier
// plus the history of runs applied to it. A single worker goroutine drains
// the queue, so runs execute in submission order while the HTTP handlers
// stay asynchronous.
type session struct {
	id      string
	label   string         // suite name (v1) or plan property list (v2)
	tenant  string         // tenant every run of this session is admitted under
	plan    *plan.Compiled // the pinned plan; updates re-validate scopes against it
	created time.Time

	verifier *delta.Verifier
	store    *store.Store // nil without -store; provenance tagging only
	wake     chan struct{}

	mu         sync.Mutex
	runs       []*sessionRun
	queue      []*queuedRun
	running    int       // runs dequeued by the worker but not yet recorded
	lastActive time.Time // last launch or run completion
	closed     bool      // session deleted: worker exits, launches are refused
	srcFP      string    // config.SourceFingerprint of the last inline-config network; "" when generator-sourced
}

// expireIfIdle closes the session if it has been idle (no queued or
// running work) since before cutoff, reporting whether it expired. The
// close decision is made under sess.mu together with the idleness check,
// so launch() can never enqueue a run into a session the GC is about to
// drop — a racing update is either observed here (the session survives) or
// refused with 404 by launch() seeing closed.
func (sess *session) expireIfIdle(cutoff time.Time) bool {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed || len(sess.queue) > 0 || sess.running > 0 || !sess.lastActive.Before(cutoff) {
		return false
	}
	sess.closed = true
	sess.queue = nil
	return true
}

// queuedRun is one pending run awaiting the session worker: a network to
// baseline/update against, or a migration plan closure. migrateFn entries
// carry an abandon hook the session's close() invokes — under the queue's
// mutual exclusion with the worker's dequeue, so exactly once — to release
// the plan's reservation and end its event stream when the session is
// deleted before the plan runs.
type queuedRun struct {
	run      *sessionRun
	network  *topology.Network
	baseline bool

	migrateFn func() (*migrate.Result, error)
	abandon   func()
}

// sessionRun is one baseline, update, or migration plan applied to a
// session.
type sessionRun struct {
	seq       int
	submitted time.Time
	baseline  bool
	migrate   bool

	status        string // running | done | failed
	errMsg        string
	result        *delta.Result
	migrateResult *migrate.Result
}

// createSession registers and starts a session whose problem source is the
// compiled plan, pinning c.Network as the baseline. The baseline's cost is
// prechecked against admission so a session that could never run is 429ed
// here; the binding admission decision is the session worker's (each run
// reserves its own dirty cost under the session's tenant).
func (s *server) createSession(w http.ResponseWriter, c *plan.Compiled, statusPrefix string) {
	cost := c.Cost()
	c.ReleasePrepared() // only the scalar is needed; the plan is pinned for the session's lifetime
	if err := s.eng.AdmitProbe(c.Tenant(), cost); err != nil {
		if !admissionError(w, err) {
			httpError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	sess := &session{
		label:      c.Label(),
		tenant:     engine.NormalizeTenant(c.Tenant()),
		plan:       c,
		created:    time.Now(),
		lastActive: time.Now(),
		verifier:   delta.NewVerifierFor(s.eng, c),
		store:      s.store,
		wake:       make(chan struct{}, 1),
	}
	if cfg := c.Request.Network.Config; cfg != "" {
		sess.srcFP = config.SourceFingerprint(cfg)
	}
	// The request's tenant, priority, and solver backend follow the
	// session: every incremental update's dirty subset is admitted under
	// the session's tenant and solves on the backend the plan selected.
	sess.verifier.SetWorkload(c.Workload())
	go sess.worker()
	s.mu.Lock()
	s.sseq++
	sess.id = fmt.Sprintf("session-%d", s.sseq)
	s.sessions[sess.id] = sess
	s.mu.Unlock()

	sess.launch(c.Network, true)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{
		"id":         sess.id,
		"status_url": statusPrefix + sess.id,
	})
}

func (s *server) handleSessionCreateV1(w http.ResponseWriter, r *http.Request) {
	var req verifyRequest
	if !decodeBody(w, r, &req) {
		return
	}
	req.Tenant = requestTenant(r, req.Tenant)
	c, ok := s.compileV1(w, &req)
	if !ok {
		return
	}
	s.createSession(w, c, "/v1/sessions/")
}

func (s *server) handleSessionCreateV2(w http.ResponseWriter, r *http.Request) {
	var req plan.Request
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Options.Baseline != nil {
		httpError(w, http.StatusBadRequest,
			"options.baseline is not supported on sessions; the session pins its own baseline")
		return
	}
	if !rejectConfigPath(w, req.Network) {
		return
	}
	req.Options.Tenant = requestTenant(r, req.Options.Tenant)
	c, err := plan.Compile(req, s)
	if err != nil {
		httpError(w, http.StatusBadRequest, strings.TrimPrefix(err.Error(), "plan: "))
		return
	}
	s.createSession(w, c, "/v2/sessions/")
}

func (s *server) lookupSession(w http.ResponseWriter, r *http.Request) (*session, bool) {
	s.mu.Lock()
	sess, ok := s.sessions[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such session")
		return nil, false
	}
	return sess, true
}

// sessionTenantAllowed enforces the session's tenant on mutating session
// endpoints: updates run under — and are charged to — the session's
// tenant, so a caller presenting a different identity may not consume that
// quota (or delete the session). The identity is resolved through the same
// channels as creation (X-Tenant header, ?tenant= query, then the request
// body's tenant field), so a session created via the body's tenant option
// remains mutable by its creator. Answers 403 and reports false on
// mismatch.
func sessionTenantAllowed(w http.ResponseWriter, r *http.Request, sess *session, bodyTenant string) bool {
	if engine.NormalizeTenant(requestTenant(r, bodyTenant)) != sess.tenant {
		httpError(w, http.StatusForbidden, "session belongs to a different tenant")
		return false
	}
	return true
}

// launchUpdate queues a materialized network as a session update and
// answers 202.
func launchUpdate(w http.ResponseWriter, sess *session, n *topology.Network, statusPrefix string) {
	run := sess.launch(n, false)
	if run == nil {
		httpError(w, http.StatusNotFound, "session deleted")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]any{
		"id":         sess.id,
		"update":     run.seq,
		"status_url": statusPrefix + sess.id,
	})
}

// sameConfigSource reports whether an inline-config update normalizes to
// the session's pinned source — a comment- or whitespace-only diff — and,
// when it does, returns the pinned network so the handler can skip the
// parse and scope re-validation entirely; the queued update then hits the
// delta verifier's unchanged fast path and republishes the pinned verdicts
// (Result.Unchanged) without re-solving anything. A genuinely new source
// re-pins the session's fingerprint and materializes normally. cfg == ""
// (generator-sourced update) never matches.
func (sess *session) sameConfigSource(cfg string) (*topology.Network, bool) {
	if cfg == "" {
		return nil, false
	}
	fp := config.SourceFingerprint(cfg)
	sess.mu.Lock()
	same := sess.srcFP != "" && fp == sess.srcFP
	sess.mu.Unlock()
	if !same {
		return nil, false
	}
	// Before the baseline run completes there is no pinned state to reuse;
	// fall through to a normal materialized update (it queues behind the
	// baseline anyway).
	n := sess.verifier.PinnedNetwork()
	return n, n != nil
}

// pinSourceFP records the source identity of the network an update
// successfully materialized from: the normalized config fingerprint for
// inline-config updates, or "" for generator-sourced ones (the pinned
// state no longer corresponds to any stored config source, so nothing may
// match it). Deliberately called only after Materialize succeeds — a
// source the parser rejects must never become the comparison base, or
// resubmitting the same broken source would silently "match" and skip the
// error.
func (sess *session) pinSourceFP(cfg string) {
	fp := ""
	if cfg != "" {
		fp = config.SourceFingerprint(cfg)
	}
	sess.mu.Lock()
	sess.srcFP = fp
	sess.mu.Unlock()
}

// currentSrcFP reads the session's pinned source fingerprint.
func (sess *session) currentSrcFP() string {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.srcFP
}

func (s *server) handleSessionUpdateV1(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	var req verifyRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if !sessionTenantAllowed(w, r, sess, req.Tenant) {
		return
	}
	if req.Suite != "" && req.Suite != sess.label {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("session is pinned to suite %q; updates cannot change it", sess.label))
		return
	}
	if n, ok := sess.sameConfigSource(req.Config); ok {
		launchUpdate(w, sess, n, "/v1/sessions/")
		return
	}
	n, _, err := plan.Network{Config: req.Config, Generator: req.Generator}.Materialize(s)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := sess.plan.ValidateScopes(n); err != nil {
		httpError(w, http.StatusBadRequest, strings.TrimPrefix(err.Error(), "plan: "))
		return
	}
	sess.pinSourceFP(req.Config)
	launchUpdate(w, sess, n, "/v1/sessions/")
}

// sessionUpdateV2 is the POST /v2/sessions/{id}/update body: a new network
// state for the session's pinned plan, plus (optionally) the caller's
// tenant when it is not asserted via header or query.
type sessionUpdateV2 struct {
	Network plan.Network `json:"network"`
	Tenant  string       `json:"tenant,omitempty"`
}

func (s *server) handleSessionUpdateV2(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	var req sessionUpdateV2
	if !decodeBody(w, r, &req) {
		return
	}
	if !sessionTenantAllowed(w, r, sess, req.Tenant) {
		return
	}
	if !rejectConfigPath(w, req.Network) {
		return
	}
	if n, ok := sess.sameConfigSource(req.Network.Config); ok {
		launchUpdate(w, sess, n, "/v2/sessions/")
		return
	}
	n, _, err := req.Network.Materialize(s)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// The pinned plan's scopes must still select real routers on the new
	// state, or the incremental run would silently verify a smaller —
	// possibly empty — problem set.
	if err := sess.plan.ValidateScopes(n); err != nil {
		httpError(w, http.StatusBadRequest, strings.TrimPrefix(err.Error(), "plan: "))
		return
	}
	sess.pinSourceFP(req.Network.Config)
	launchUpdate(w, sess, n, "/v2/sessions/")
}

// sessionMigrateV2 is the POST /v2/sessions/{id}/migrate body: a migration
// plan's step list (the session pins the baseline, properties, and
// options), plus the search controls and optionally the caller's tenant.
// Network and Properties are decoded only so that bodies carrying them are
// rejected by CompileSteps with a real explanation rather than silently
// ignored.
type sessionMigrateV2 struct {
	Network      *plan.Network   `json:"network,omitempty"`
	Properties   []plan.Property `json:"properties,omitempty"`
	Steps        []migrate.Step  `json:"steps"`
	Unordered    bool            `json:"unordered,omitempty"`
	SearchBudget int             `json:"search_budget,omitempty"`
	Tenant       string          `json:"tenant,omitempty"`
}

// handleSessionMigrate verifies a migration plan against the session's
// pinned baseline and streams its step-indexed events as NDJSON. Unlike
// updates (202 + poll), the response is the run: migration is a deployment
// gate, and the caller wants the first violating step the moment it is
// found. The plan executes on the session worker — strictly ordered with
// the session's other runs — while this handler relays its events; a
// disconnecting client does not abort the plan (the session must end on a
// verified state, pinned or rolled back, not mid-sequence).
func (s *server) handleSessionMigrate(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	var req sessionMigrateV2
	if !decodeBody(w, r, &req) {
		return
	}
	if !sessionTenantAllowed(w, r, sess, req.Tenant) {
		return
	}
	var c *migrate.Compiled
	var cerr error
	tr, ok := s.startRequestTrace("migrate:"+sess.label, sess.tenant, func() bool {
		c, cerr = migrate.CompileSteps(migrate.Plan{
			Network:      req.Network,
			Properties:   req.Properties,
			Steps:        req.Steps,
			Unordered:    req.Unordered,
			SearchBudget: req.SearchBudget,
		}, sess.plan, sess.currentSrcFP())
		return cerr == nil
	})
	if !ok {
		httpError(w, http.StatusBadRequest, strings.TrimPrefix(cerr.Error(), "plan: "))
		return
	}
	// Whole-plan admission, decided before the stream opens: every step
	// re-solves at most the plan's full per-state cost, and the steps run
	// sequentially, so one reservation covers the entire sequence. An
	// over-quota migration is a clean 429 here, never a failure mid-plan.
	resv, ok := s.admitTraced(w, sess.plan, tr)
	if !ok {
		return
	}

	events := make(chan migrate.Event, 256)
	clientGone := make(chan struct{})
	run := sess.launchMigrate(func() (*migrate.Result, error) {
		defer close(events)
		defer tr.Finish()
		res, err := migrate.Run(context.Background(), s.eng, c, migrate.RunConfig{
			Verifier:         sess.verifier,
			BaselineSourceFP: sess.currentSrcFP(),
			Reservation:      resv, // released by Run
			Store:            s.store,
			Recorder:         s.rec,
			Trace:            tr,
			Sink: func(ev migrate.Event) {
				select {
				case events <- ev:
				case <-clientGone:
					// Client disconnected; keep running, drop the event.
				}
			},
		})
		if err != nil {
			select {
			case events <- migrate.Event{Type: migrate.EvError, Step: -1, PlanStep: -1, Reason: err.Error()}:
			case <-clientGone:
			}
		}
		return res, err
	}, func() {
		// Session deleted while the plan was queued: nothing ran, nothing
		// was reserved beyond the admission we took — hand it back and end
		// the stream.
		resv.Release()
		tr.Finish()
		close(events)
	})
	if run == nil {
		resv.Release()
		tr.Finish()
		httpError(w, http.StatusNotFound, "session deleted")
		return
	}

	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	if id := tr.ID(); id != "" {
		w.Header().Set("X-Trace-Id", id)
	}
	w.WriteHeader(http.StatusOK)
	defer close(clientGone)
	enc := json.NewEncoder(w)
	for {
		select {
		case ev, open := <-events:
			if !open {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if canFlush {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		case <-s.shutdown:
			// Everything emitted so far has been flushed; the plan itself
			// finishes on the session worker.
			return
		}
	}
}

// launch enqueues a run and returns immediately; the session worker
// executes queued runs in submission order (run seq and queue position are
// assigned under one lock hold, so they agree). Returns nil if the session
// has been deleted.
func (sess *session) launch(n *topology.Network, baseline bool) *sessionRun {
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		return nil
	}
	run := &sessionRun{seq: len(sess.runs), submitted: time.Now(), baseline: baseline, status: "running"}
	sess.runs = append(sess.runs, run)
	sess.queue = append(sess.queue, &queuedRun{run: run, network: n, baseline: baseline})
	sess.lastActive = time.Now()
	sess.mu.Unlock()
	select {
	case sess.wake <- struct{}{}:
	default: // worker already signaled
	}
	return run
}

// launchMigrate queues a migration plan on the session worker, so it runs
// in submission order with the session's baselines and updates (never
// concurrently with them — migration steps and updates mutate the same
// verifier). fn executes the plan; abandon is invoked instead if the
// session is deleted while the plan is still queued. Returns nil if the
// session is already deleted (the caller keeps ownership of the plan's
// reservation and event stream).
func (sess *session) launchMigrate(fn func() (*migrate.Result, error), abandon func()) *sessionRun {
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		return nil
	}
	run := &sessionRun{seq: len(sess.runs), submitted: time.Now(), migrate: true, status: "running"}
	sess.runs = append(sess.runs, run)
	sess.queue = append(sess.queue, &queuedRun{run: run, migrateFn: fn, abandon: abandon})
	sess.lastActive = time.Now()
	sess.mu.Unlock()
	select {
	case sess.wake <- struct{}{}:
	default:
	}
	return run
}

// close marks the session deleted and releases its worker. Queued runs are
// abandoned; a queued migration plan's abandon hook releases its
// reservation and closes its event stream. The queue is swapped out under
// sess.mu — the worker dequeues under the same lock, so an entry is either
// abandoned here or executed there, never both.
func (sess *session) close() {
	sess.mu.Lock()
	sess.closed = true
	abandoned := sess.queue
	sess.queue = nil
	sess.mu.Unlock()
	for _, q := range abandoned {
		if q.abandon != nil {
			q.abandon()
		}
	}
	select {
	case sess.wake <- struct{}{}:
	default:
	}
}

// worker drains the session's run queue until the session is deleted.
func (sess *session) worker() {
	for range sess.wake {
		for {
			sess.mu.Lock()
			if sess.closed {
				sess.mu.Unlock()
				return
			}
			if len(sess.queue) == 0 {
				sess.mu.Unlock()
				break
			}
			q := sess.queue[0]
			sess.queue = sess.queue[1:]
			sess.running++
			sess.mu.Unlock()

			if q.migrateFn != nil {
				mres, err := q.migrateFn()
				sess.mu.Lock()
				q.run.migrateResult = mres
				if err != nil {
					q.run.status = "failed"
					q.run.errMsg = err.Error()
					// The rollback to the original baseline may itself have
					// failed; the pinned state is unknown, so no stored
					// source may claim to match it.
					sess.srcFP = ""
				} else {
					q.run.status = "done"
					if mres.OK {
						// The final migrated state is the session's new
						// baseline: re-pin its source identity ("" when it is
						// mutation-derived and corresponds to no stored
						// config source) so the no-op fast path stays sound.
						sess.srcFP = mres.FinalSourceFP
					}
				}
				sess.running--
				sess.lastActive = time.Now()
				sess.mu.Unlock()
				continue
			}

			if sess.store != nil {
				sess.store.SetFingerprint(q.network.Fingerprint())
			}
			var res *delta.Result
			var err error
			if q.baseline {
				res, err = sess.verifier.Baseline(q.network)
			} else {
				res, err = sess.verifier.Update(q.network)
			}
			sess.mu.Lock()
			if err != nil {
				// Includes admission rejections: the run's dirty subset was
				// reserved under the session's tenant and refused. The error
				// (with its retry hint) is the run's recorded status.
				q.run.status = "failed"
				q.run.errMsg = err.Error()
			} else {
				q.run.status = "done"
				q.run.result = res
			}
			sess.running--
			sess.lastActive = time.Now()
			sess.mu.Unlock()
		}
	}
}

// sessionJSON is the GET /v{1,2}/sessions/{id} response.
type sessionJSON struct {
	ID          string           `json:"id"`
	Suite       string           `json:"suite"`
	Tenant      string           `json:"tenant,omitempty"`
	Created     time.Time        `json:"created"`
	Fingerprint string           `json:"fingerprint,omitempty"` // pinned network state
	Results     int              `json:"retained_results"`
	Runs        []sessionRunJSON `json:"runs"`
}

type sessionRunJSON struct {
	Seq       int             `json:"seq"`
	Submitted time.Time       `json:"submitted"`
	Baseline  bool            `json:"baseline"`
	Migrate   bool            `json:"migrate,omitempty"`
	Status    string          `json:"status"`
	Error     string          `json:"error,omitempty"`
	Result    *delta.Result   `json:"result,omitempty"`
	Migration *migrate.Result `json:"migration,omitempty"`
}

func (s *server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	out := sessionJSON{
		ID:          sess.id,
		Suite:       sess.label,
		Tenant:      sess.tenant,
		Created:     sess.created,
		Fingerprint: sess.verifier.Fingerprint(),
		Results:     sess.verifier.ResultCount(),
	}
	sess.mu.Lock()
	for _, run := range sess.runs {
		out.Runs = append(out.Runs, sessionRunJSON{
			Seq:       run.seq,
			Submitted: run.submitted,
			Baseline:  run.baseline,
			Migrate:   run.migrate,
			Status:    run.status,
			Error:     run.errMsg,
			Result:    run.result,
			Migration: run.migrateResult,
		})
	}
	sess.mu.Unlock()
	writeJSON(w, out)
}

func (s *server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sess, ok := s.sessions[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	if !sessionTenantAllowed(w, r, sess, "") { // DELETE has no body: header or ?tenant=
		return
	}
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.mu.Unlock()
	sess.close()
	writeJSON(w, map[string]string{"deleted": sess.id})
}

// statsJSON is the GET /v1/stats response.
type statsJSON struct {
	Engine   engine.Stats `json:"engine"`
	Jobs     int          `json:"jobs"`
	Sessions int          `json:"sessions"`
	Store    *store.Stats `json:"store,omitempty"`
	// Fabric aggregates the distributed solver pools' per-worker counters;
	// present whenever a remote backend has been constructed.
	Fabric *fabric.Stats `json:"fabric,omitempty"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs, sessions := len(s.jobs), len(s.sessions)
	s.mu.Unlock()
	out := statsJSON{Engine: s.eng.Stats(), Jobs: jobs, Sessions: sessions, Fabric: fabric.Snapshot()}
	if st, ok := s.eng.Cache().(*store.Store); ok {
		stats := st.Stats()
		out.Store = &stats
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		srvLog.Warn("encode response failed", slog.Any("error", err))
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
