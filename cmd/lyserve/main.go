// Command lyserve is the Lightyear verification service: an HTTP JSON API
// that runs verification jobs asynchronously on a shared internal/engine
// Engine, so concurrent requests dedup identical local checks and reuse the
// process-wide LRU result cache.
//
// Usage:
//
//	lyserve [-addr :8080] [-workers N] [-cache N] [-store DIR] [-job-ttl 1h]
//
// With -store DIR the engine's result cache is the internal/store
// persistent journal in DIR, so a redeployed lyserve serves previously
// solved checks without re-solving them. Completed jobs are garbage-
// collected -job-ttl after completion (default 1h); sessions are pinned
// until DELETE /v1/sessions/{id} and are never GCed automatically.
//
// API:
//
//	POST /v1/verify
//	    Body: {"suite": "<suite>", "regions": N,
//	           "config": "<internal/config DSL source>"} or
//	          {"suite": "<suite>",
//	           "generator": {"kind": "fig1" | "fullmesh" | "wan",
//	                         "size": N,                      // fullmesh
//	                         "regions": N, "routers_per_region": N,
//	                         "edge_routers": N, "dcs_per_region": N,
//	                         "peers_per_edge": N}}           // wan
//	    Suites are the names in the internal/netgen registry
//	    (fig1-no-transit, fig1-liveness, fullmesh, wan-peering,
//	    wan-ip-reuse, wan-ip-liveness).
//	    Returns 202 with {"id": "...", "status_url": "/v1/jobs/<id>"}; the
//	    job runs asynchronously on the engine.
//
//	GET /v1/jobs/{id}
//	    Returns the job: overall status (running|done), per-problem
//	    completion counts streamed from engine progress events, and — once
//	    complete — each problem's report in the same JSON encoding
//	    `lightyear -json` emits, plus per-problem cache/dedup stats.
//
//	GET /v1/stats
//	    Returns engine counters (checks submitted/solved, cache hits,
//	    dedup hits, cache occupancy), job counts, session counts, and —
//	    with -store — persistent-store counters.
//
// Incremental sessions (internal/delta): a session pins a baseline network
// for a suite and re-verifies submitted configuration deltas against it,
// re-solving only the checks each change dirties.
//
//	POST /v1/sessions
//	    Body: same shape as /v1/verify ({"suite": ..., "config": ...} or
//	    {"suite": ..., "generator": ...}). Pins the network as the
//	    session baseline and verifies it in full, asynchronously.
//	    Returns 202 with {"id": "...", "status_url": "/v1/sessions/<id>"}.
//
//	POST /v1/sessions/{id}/update
//	    Body: {"config": ...} or {"generator": ...} (no suite — the
//	    session's suite applies). Diffs the submitted network against the
//	    session's pinned state, submits the dirty check subset as an
//	    incremental job, and pins the new state. Returns 202 with the
//	    update's sequence number. Updates are applied in submission order.
//
//	GET /v1/sessions/{id}
//	    Returns the session: suite, pinned-network fingerprint, and every
//	    run (baseline + updates) with its status and — once complete —
//	    the delta result {changed routers, dirty checks, reused results,
//	    solved, per-problem outcomes}.
//
//	DELETE /v1/sessions/{id}
//	    Unpins the session, releasing its retained results and worker.
//	    Queued-but-unstarted runs are abandoned.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync"
	"time"

	"lightyear/internal/config"
	"lightyear/internal/delta"
	"lightyear/internal/engine"
	"lightyear/internal/netgen"
	"lightyear/internal/store"
	"lightyear/internal/topology"
)

// defaultJobTTL is how long completed jobs stay queryable before GC.
const defaultJobTTL = time.Hour

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
		cacheSize = flag.Int("cache", 0, "engine result-cache capacity (0 = default, <0 disables; ignored with -store)")
		storeDir  = flag.String("store", "", "persistent result-store directory (replaces the in-memory cache)")
		jobTTL    = flag.Duration("job-ttl", defaultJobTTL, "retention of completed jobs")
	)
	flag.Parse()

	opts := engine.Options{Workers: *workers, CacheSize: *cacheSize}
	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir)
		if err != nil {
			log.Fatalf("lyserve: %v", err)
		}
		defer st.Close()
		log.Printf("lyserve: store %s (%d results on disk)", *storeDir, st.Len())
		opts.Cache = st
	}
	eng := engine.New(opts)
	defer eng.Close()
	srv := newServer(eng)
	srv.store = st
	srv.ttl = *jobTTL
	go srv.janitor()
	log.Printf("lyserve: %s listening on %s (suites: %s)",
		eng, *addr, strings.Join(netgen.SuiteNames(), ", "))
	log.Fatal(http.ListenAndServe(*addr, srv.routes()))
}

// server owns the engine and the in-memory job and session tables.
type server struct {
	eng   *engine.Engine
	store *store.Store  // nil without -store; provenance tagging only
	ttl   time.Duration // completed-job retention

	mu       sync.Mutex
	seq      int
	jobs     map[string]*serviceJob
	sseq     int
	sessions map[string]*session
}

func newServer(eng *engine.Engine) *server {
	return &server{
		eng:      eng,
		ttl:      defaultJobTTL,
		jobs:     make(map[string]*serviceJob),
		sessions: make(map[string]*session),
	}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	mux.HandleFunc("POST /v1/sessions/{id}/update", s.handleSessionUpdate)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	return mux
}

// janitor periodically drops completed jobs older than the TTL. It runs for
// the life of the process.
func (s *server) janitor() {
	interval := s.ttl / 10
	if interval < time.Second {
		interval = time.Second
	}
	for range time.Tick(interval) {
		s.gc(time.Now())
	}
}

// tagStore records n's fingerprint as provenance on subsequently journaled
// store results. Best-effort under concurrent jobs: provenance names *a*
// network state that submitted the check around that time, which is what
// the store documents it for (retention scoping, not lookup).
func (s *server) tagStore(n *topology.Network) {
	if s.store != nil {
		s.store.SetFingerprint(n.Fingerprint())
	}
}

// gc removes jobs that completed before now-ttl. Running jobs and sessions
// are never collected.
func (s *server) gc(now time.Time) int {
	cutoff := now.Add(-s.ttl)
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for id, j := range s.jobs {
		if done, at := j.doneAt(); done && at.Before(cutoff) {
			delete(s.jobs, id)
			removed++
		}
	}
	return removed
}

// serviceJob is one POST /v1/verify request: a batch of engine jobs, one
// per problem in the suite.
type serviceJob struct {
	id      string
	suite   string
	created time.Time

	mu       sync.Mutex
	pending  int
	done     time.Time // when the last engine job finished (zero while running)
	problems []*problemState
}

// doneAt reports whether the job has completed and when.
func (j *serviceJob) doneAt() (bool, time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.pending == 0, j.done
}

type problemState struct {
	name       string
	total      int
	completed  int
	skipped    bool   // optional problem not applicable to this network
	failed     bool   // problem could not be submitted; fails the job
	skipReason string // reason for skipped or failed
	report     *engine.ReportJSON
	stats      *engine.JobStats
}

// verifyRequest is the POST /v1/verify body.
type verifyRequest struct {
	Suite     string         `json:"suite"`
	Regions   int            `json:"regions,omitempty"`
	Config    string         `json:"config,omitempty"`
	Generator *generatorSpec `json:"generator,omitempty"`
}

type generatorSpec struct {
	Kind             string `json:"kind"`
	Size             int    `json:"size,omitempty"`
	Regions          int    `json:"regions,omitempty"`
	RoutersPerRegion int    `json:"routers_per_region,omitempty"`
	EdgeRouters      int    `json:"edge_routers,omitempty"`
	DCsPerRegion     int    `json:"dcs_per_region,omitempty"`
	PeersPerEdge     int    `json:"peers_per_edge,omitempty"`
}

// buildNetwork materializes the request's network and the region count the
// WAN suites should assume.
func (r *verifyRequest) buildNetwork() (*topology.Network, int, error) {
	regions := r.Regions
	switch {
	case r.Config != "" && r.Generator != nil:
		return nil, 0, fmt.Errorf("specify either config or generator, not both")
	case r.Config != "":
		n, err := config.Parse(r.Config)
		if err != nil {
			return nil, 0, fmt.Errorf("config: %w", err)
		}
		return n, regions, nil
	case r.Generator != nil:
		g := r.Generator
		switch g.Kind {
		case "fig1":
			return netgen.Fig1(netgen.Fig1Options{}), regions, nil
		case "fullmesh":
			size := g.Size
			if size == 0 {
				size = 10
			}
			if size < 2 {
				return nil, 0, fmt.Errorf("fullmesh size must be >= 2")
			}
			return netgen.FullMesh(size), regions, nil
		case "wan":
			p := netgen.DefaultWANParams()
			if g.Regions > 0 {
				p.Regions = g.Regions
			}
			if g.RoutersPerRegion > 0 {
				p.RoutersPerRegion = g.RoutersPerRegion
			}
			if g.EdgeRouters > 0 {
				p.EdgeRouters = g.EdgeRouters
			}
			if g.DCsPerRegion > 0 {
				p.DCsPerRegion = g.DCsPerRegion
			}
			if g.PeersPerEdge > 0 {
				p.PeersPerEdge = g.PeersPerEdge
			}
			if regions == 0 {
				regions = p.Regions
			}
			return netgen.WAN(p, netgen.WANBugs{}), regions, nil
		default:
			return nil, 0, fmt.Errorf("unknown generator kind %q (fig1|fullmesh|wan)", g.Kind)
		}
	default:
		return nil, 0, fmt.Errorf("one of config or generator is required")
	}
}

func (s *server) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req verifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	suite, ok := netgen.Lookup(req.Suite)
	if !ok {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown suite %q (have: %s)",
			req.Suite, strings.Join(netgen.SuiteNames(), ", ")))
		return
	}
	n, regions, err := req.buildNetwork()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.tagStore(n)
	problems := suite.Build(n, netgen.SuiteParams{Regions: regions})

	j := &serviceJob{suite: suite.Name, created: time.Now()}

	// Submit every problem before waiting on any, so the engine dedups
	// identical checks across the whole suite (and across other live
	// requests sharing this engine). Watchers start only after the job
	// table below is fully built, so no lock is needed here.
	engineJobs := make([]*engine.Job, len(problems))
	for i, p := range problems {
		ps := &problemState{name: p.Name}
		j.problems = append(j.problems, ps)
		switch {
		case p.Safety != nil:
			engineJobs[i] = s.eng.SubmitSafety(p.Safety)
		case p.Liveness != nil:
			ej, err := s.eng.SubmitLiveness(p.Liveness)
			if err != nil {
				if p.Optional {
					ps.skipped = true
					ps.skipReason = err.Error()
				} else {
					ps.failed = true
					ps.skipReason = err.Error()
				}
				continue
			}
			engineJobs[i] = ej
		default:
			ps.failed = true
			ps.skipReason = "suite produced an empty problem"
			continue
		}
		ps.total = engineJobs[i].NumChecks()
		j.pending++
	}

	if j.pending == 0 {
		// No engine jobs (every problem skipped or failed): completed on
		// arrival, eligible for GC after the TTL.
		j.done = time.Now()
	}

	s.mu.Lock()
	s.seq++
	j.id = fmt.Sprintf("job-%d", s.seq)
	s.jobs[j.id] = j
	s.mu.Unlock()

	for i, ej := range engineJobs {
		if ej != nil {
			go j.watch(j.problems[i], ej)
		}
	}

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{
		"id":         j.id,
		"status_url": "/v1/jobs/" + j.id,
	})
}

// watch drains an engine job's progress stream into the problem state and
// records the final report.
func (j *serviceJob) watch(ps *problemState, ej *engine.Job) {
	for ev := range ej.Progress() {
		j.mu.Lock()
		ps.completed = ev.Completed
		j.mu.Unlock()
	}
	rep := ej.Wait()
	enc := engine.EncodeReport(rep)
	st := ej.Stats()
	j.mu.Lock()
	ps.completed = ps.total
	ps.report = &enc
	ps.stats = &st
	j.pending--
	if j.pending == 0 {
		j.done = time.Now()
	}
	j.mu.Unlock()
}

// jobJSON is the GET /v1/jobs/{id} response.
type jobJSON struct {
	ID       string            `json:"id"`
	Suite    string            `json:"suite"`
	Status   string            `json:"status"` // running | done
	OK       *bool             `json:"ok,omitempty"`
	Created  time.Time         `json:"created"`
	Problems []problemStatusJS `json:"problems"`
}

type problemStatusJS struct {
	Name       string             `json:"name"`
	Status     string             `json:"status"` // running | done | skipped | failed
	Completed  int                `json:"completed"`
	Total      int                `json:"total"`
	SkipReason string             `json:"skip_reason,omitempty"`
	Report     *engine.ReportJSON `json:"report,omitempty"`
	Stats      *engine.JobStats   `json:"stats,omitempty"`
}

func (j *serviceJob) snapshot() jobJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := jobJSON{ID: j.id, Suite: j.suite, Created: j.created, Status: "done"}
	if j.pending > 0 {
		out.Status = "running"
	}
	allOK := true
	for _, ps := range j.problems {
		st := problemStatusJS{
			Name:       ps.name,
			Completed:  ps.completed,
			Total:      ps.total,
			SkipReason: ps.skipReason,
			Report:     ps.report,
			Stats:      ps.stats,
		}
		switch {
		case ps.failed:
			st.Status = "failed"
			allOK = false
		case ps.skipped:
			st.Status = "skipped"
		case ps.report != nil:
			st.Status = "done"
			if !ps.report.OK {
				allOK = false
			}
		default:
			st.Status = "running"
		}
		out.Problems = append(out.Problems, st)
	}
	if out.Status == "done" {
		out.OK = &allOK
	}
	return out
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, j.snapshot())
}

// session is one incremental verification session: a pinned delta.Verifier
// plus the history of runs applied to it. A single worker goroutine drains
// the queue, so runs execute in submission order while the HTTP handlers
// stay asynchronous.
type session struct {
	id      string
	suite   string
	created time.Time

	verifier *delta.Verifier
	store    *store.Store // nil without -store; provenance tagging only
	wake     chan struct{}

	mu     sync.Mutex
	runs   []*sessionRun
	queue  []*queuedRun
	closed bool // session deleted: worker exits, launches are refused
}

// queuedRun is one pending run awaiting the session worker.
type queuedRun struct {
	run      *sessionRun
	network  *topology.Network
	baseline bool
}

// sessionRun is one baseline or update applied to a session.
type sessionRun struct {
	seq       int
	submitted time.Time
	baseline  bool

	status string // running | done | failed
	errMsg string
	result *delta.Result
}

// sessionRequest is the POST /v1/sessions and .../update body. Update
// bodies carry no suite (the session's applies).
type sessionRequest = verifyRequest

func (s *server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req sessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	suite, ok := netgen.Lookup(req.Suite)
	if !ok {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown suite %q (have: %s)",
			req.Suite, strings.Join(netgen.SuiteNames(), ", ")))
		return
	}
	n, regions, err := req.buildNetwork()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	sess := &session{
		suite:    suite.Name,
		created:  time.Now(),
		verifier: delta.NewVerifier(s.eng, suite, netgen.SuiteParams{Regions: regions}),
		store:    s.store,
		wake:     make(chan struct{}, 1),
	}
	go sess.worker()
	s.mu.Lock()
	s.sseq++
	sess.id = fmt.Sprintf("session-%d", s.sseq)
	s.sessions[sess.id] = sess
	s.mu.Unlock()

	sess.launch(n, true)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{
		"id":         sess.id,
		"status_url": "/v1/sessions/" + sess.id,
	})
}

func (s *server) handleSessionUpdate(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sess, ok := s.sessions[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	var req sessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.Suite != "" && req.Suite != sess.suite {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("session is pinned to suite %q; updates cannot change it", sess.suite))
		return
	}
	n, _, err := req.buildNetwork()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	run := sess.launch(n, false)
	if run == nil {
		httpError(w, http.StatusNotFound, "session deleted")
		return
	}

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]any{
		"id":         sess.id,
		"update":     run.seq,
		"status_url": "/v1/sessions/" + sess.id,
	})
}

// launch enqueues a run and returns immediately; the session worker
// executes queued runs in submission order (run seq and queue position are
// assigned under one lock hold, so they agree). Returns nil if the session
// has been deleted.
func (sess *session) launch(n *topology.Network, baseline bool) *sessionRun {
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		return nil
	}
	run := &sessionRun{seq: len(sess.runs), submitted: time.Now(), baseline: baseline, status: "running"}
	sess.runs = append(sess.runs, run)
	sess.queue = append(sess.queue, &queuedRun{run: run, network: n, baseline: baseline})
	sess.mu.Unlock()
	select {
	case sess.wake <- struct{}{}:
	default: // worker already signaled
	}
	return run
}

// close marks the session deleted and releases its worker. Queued runs are
// abandoned.
func (sess *session) close() {
	sess.mu.Lock()
	sess.closed = true
	sess.queue = nil
	sess.mu.Unlock()
	select {
	case sess.wake <- struct{}{}:
	default:
	}
}

// worker drains the session's run queue until the session is deleted.
func (sess *session) worker() {
	for range sess.wake {
		for {
			sess.mu.Lock()
			if sess.closed {
				sess.mu.Unlock()
				return
			}
			if len(sess.queue) == 0 {
				sess.mu.Unlock()
				break
			}
			q := sess.queue[0]
			sess.queue = sess.queue[1:]
			sess.mu.Unlock()

			if sess.store != nil {
				sess.store.SetFingerprint(q.network.Fingerprint())
			}
			var res *delta.Result
			var err error
			if q.baseline {
				res, err = sess.verifier.Baseline(q.network)
			} else {
				res, err = sess.verifier.Update(q.network)
			}
			sess.mu.Lock()
			if err != nil {
				q.run.status = "failed"
				q.run.errMsg = err.Error()
			} else {
				q.run.status = "done"
				q.run.result = res
			}
			sess.mu.Unlock()
		}
	}
}

// sessionJSON is the GET /v1/sessions/{id} response.
type sessionJSON struct {
	ID          string           `json:"id"`
	Suite       string           `json:"suite"`
	Created     time.Time        `json:"created"`
	Fingerprint string           `json:"fingerprint,omitempty"` // pinned network state
	Results     int              `json:"retained_results"`
	Runs        []sessionRunJSON `json:"runs"`
}

type sessionRunJSON struct {
	Seq       int           `json:"seq"`
	Submitted time.Time     `json:"submitted"`
	Baseline  bool          `json:"baseline"`
	Status    string        `json:"status"`
	Error     string        `json:"error,omitempty"`
	Result    *delta.Result `json:"result,omitempty"`
}

func (s *server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sess, ok := s.sessions[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	out := sessionJSON{
		ID:          sess.id,
		Suite:       sess.suite,
		Created:     sess.created,
		Fingerprint: sess.verifier.Fingerprint(),
		Results:     sess.verifier.ResultCount(),
	}
	sess.mu.Lock()
	for _, run := range sess.runs {
		out.Runs = append(out.Runs, sessionRunJSON{
			Seq:       run.seq,
			Submitted: run.submitted,
			Baseline:  run.baseline,
			Status:    run.status,
			Error:     run.errMsg,
			Result:    run.result,
		})
	}
	sess.mu.Unlock()
	writeJSON(w, out)
}

func (s *server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sess, ok := s.sessions[r.PathValue("id")]
	if ok {
		delete(s.sessions, sess.id)
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	sess.close()
	writeJSON(w, map[string]string{"deleted": sess.id})
}

// statsJSON is the GET /v1/stats response.
type statsJSON struct {
	Engine   engine.Stats `json:"engine"`
	Jobs     int          `json:"jobs"`
	Sessions int          `json:"sessions"`
	Store    *store.Stats `json:"store,omitempty"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs, sessions := len(s.jobs), len(s.sessions)
	s.mu.Unlock()
	out := statsJSON{Engine: s.eng.Stats(), Jobs: jobs, Sessions: sessions}
	if st, ok := s.eng.Cache().(*store.Store); ok {
		stats := st.Stats()
		out.Store = &stats
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("lyserve: encode response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
