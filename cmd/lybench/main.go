// Command lybench regenerates the tables and figures of the paper's
// evaluation (§6) on this implementation:
//
//	-experiment table1    feature-comparison matrix (Table 1)
//	-experiment table2    Figure-1 no-transit checks and verdicts (Table 2)
//	-experiment table3    Figure-1 liveness checks and verdicts (Table 3)
//	-experiment table4a   WAN peering properties, with bug localization (Table 4a)
//	-experiment table4b   WAN IP-reuse safety per region (Table 4b)
//	-experiment table4c   WAN IP-reuse liveness per region (Table 4c)
//	-experiment fig3      Lightyear vs Minesweeper scaling sweep (Figure 3a-d)
//	-experiment wan       §6.1 scale run: peering properties across a large WAN,
//	                      sequential vs parallel vs compiled plan (cross-problem
//	                      dedup), all driving the same netgen suite registry and
//	                      plan path production uses
//	-experiment delta     incremental re-verification: change size vs re-verify
//	                      cost through internal/delta (the §2 incremental claim),
//	                      driving a compiled plan as the problem source
//	-experiment solver    solver-backend comparison: the wan-peering suite run
//	                      cold under the native, portfolio, and tiered backends,
//	                      with per-backend solve-time and routing stats
//	-experiment admission multi-tenant admission sweep: tenant count × per-tenant
//	                      quota, reporting p50/p99 queue wait and the rejection
//	                      rate under the engine's weighted-fair dispatcher
//	-experiment shard     distributed solver fabric scaling: the sat-stress
//	                      obligations shipped to an in-process lyworker fleet
//	                      of 1..N capacity-capped workers over real HTTP,
//	                      reporting checks/sec, rpc latency quantiles, and the
//	                      per-worker shard counters
//	-experiment faults    differential simulation under random failures (§4.5)
//	-experiment corpus    scenario-corpus sweep: the default roster of ≥30
//	                      generated topologies (ring, tree, fattree, waxman,
//	                      zoo) with one bug planted per member, asserting
//	                      100% detection with zero mislocalizations, plus a
//	                      property-preserving fuzz soak and byte-identical
//	                      regeneration checks; -seed picks the roster,
//	                      -members truncates it for smoke runs
//	-experiment migrate   migration-plan verification: ordered walks of k
//	                      commuting steps on a WAN (per-step dirty subset vs
//	                      whole-network re-verification) and the safe-order
//	                      search on the same set declared unordered (states
//	                      verified vs k! orderings), plus the fig1 filter
//	                      swap where exactly one order of six is safe
//	-experiment all       everything above
//
// With -out FILE the wan, solver, shard, migrate, and corpus experiments
// additionally write a JSON benchmark document (BENCH_wan.json /
// BENCH_solver.json / BENCH_corpus.json in this repo's committed
// trajectory): completed checks per second, allocations per
// check, p50/p99 solve-time and queue-wait quantiles derived from the
// same internal/telemetry histograms lyserve exposes at /metrics, and the
// solver-depth dimensions (mean CDCL conflicts and learned clauses per
// solved check) from the engine's per-backend provenance — so the
// committed numbers and the production metrics come from one code path.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"lightyear/internal/core"
	"lightyear/internal/corpus"
	"lightyear/internal/delta"
	"lightyear/internal/engine"
	"lightyear/internal/fabric"
	"lightyear/internal/migrate"
	"lightyear/internal/minesweeper"
	"lightyear/internal/netgen"
	"lightyear/internal/plan"
	"lightyear/internal/routemodel"
	"lightyear/internal/sim"
	"lightyear/internal/solver"
	"lightyear/internal/telemetry"
	"lightyear/internal/topology"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment to run")
		sizes      = flag.String("sizes", "10,20,30,40", "fig3: comma-separated mesh sizes")
		msTimeout  = flag.Duration("ms-timeout", 2*time.Minute, "fig3: Minesweeper per-size timeout (paper used 2h)")
		wanScale   = flag.String("wan-scale", "small", "wan: small|medium|large")
		workers    = flag.Int("workers", 0, "parallel check workers (0 = GOMAXPROCS)")
		seed       = flag.Int64("seed", 1, "base seed for seeded experiments (corpus roster, fuzz soak); recorded in every -out document")
		members    = flag.Int("members", 0, "corpus: verify only the first N roster members (0 = all)")
		out        = flag.String("out", "", "write a JSON benchmark document (wan, solver, shard, migrate, and corpus experiments)")
	)
	flag.Parse()
	switch *experiment {
	case "wan", "solver", "shard", "migrate", "corpus":
	default:
		if *out != "" {
			fmt.Fprintf(os.Stderr, "lybench: -out is supported by the wan, solver, shard, migrate, and corpus experiments, not %q\n", *experiment)
			os.Exit(2)
		}
	}

	// All experiments share one verification engine, so identical checks
	// re-issued across tables are solved once. The wan experiment builds
	// its own engines because it measures execution modes against each
	// other.
	eng := engine.New(engine.Options{Workers: *workers})
	defer eng.Close()

	switch *experiment {
	case "table1":
		table1()
	case "table2":
		table2(eng)
	case "table3":
		table3(eng)
	case "table4a":
		table4a(eng)
	case "table4b":
		table4b(eng)
	case "table4c":
		table4c(eng)
	case "fig3":
		fig3(parseSizes(*sizes), *msTimeout, *workers)
	case "wan":
		wanExperiment(*wanScale, *workers, *seed, *out)
	case "delta":
		deltaExperiment(*workers)
	case "solver":
		solverExperiment(*workers, *seed, *out)
	case "admission":
		admissionExperiment(*workers)
	case "shard":
		shardExperiment(*seed, *out)
	case "faults":
		faults()
	case "migrate":
		migrateExperiment(*workers, *seed, *out)
	case "corpus":
		corpusExperiment(*workers, *seed, *members, *out)
	case "all":
		table1()
		table2(eng)
		table3(eng)
		table4a(eng)
		table4b(eng)
		table4c(eng)
		fig3(parseSizes(*sizes), *msTimeout, *workers)
		wanExperiment(*wanScale, *workers, *seed, "")
		deltaExperiment(*workers)
		solverExperiment(*workers, *seed, "")
		admissionExperiment(*workers)
		shardExperiment(*seed, "")
		faults()
		migrateExperiment(*workers, *seed, "")
		corpusExperiment(*workers, *seed, *members, "")
	default:
		fmt.Fprintf(os.Stderr, "lybench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

// verifySafety and verifyLiveness run one problem synchronously through the
// unified engine.Submit path — the only submission API the bench exercises.
func verifySafety(eng *engine.Engine, p *core.SafetyProblem) *core.Report {
	j, err := eng.Submit(context.Background(), engine.Workload{Safety: p})
	if err != nil {
		fatal(err)
	}
	return j.Wait()
}

func verifyLiveness(eng *engine.Engine, p *core.LivenessProblem) (*core.Report, error) {
	j, err := eng.Submit(context.Background(), engine.Workload{Liveness: p})
	if err != nil {
		return nil, err
	}
	return j.Wait(), nil
}

func parseSizes(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 2 {
			fmt.Fprintf(os.Stderr, "lybench: bad size %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

// table1 prints the qualitative comparison of Table 1 with Lightyear's
// column grounded in this implementation.
func table1() {
	header("Table 1: tool feature matrix")
	rows := []struct{ feature, minesweeper, bagpipe, plankton, arc, lightyear string }{
		{"Analyzes all peer BGP routes", "yes", "yes", "no", "no", "yes (internal/core: symbolic external announcements)"},
		{"Analyzes failures", "yes", "no", "yes", "yes", "yes for safety (§4.5, core/safety.go)"},
		{"Checks safety and liveness", "yes", "partial", "no", "yes", "yes (core/safety.go, core/liveness.go)"},
		{"Verification fully automatic", "yes", "yes", "yes", "yes", "partial: user supplies local invariants"},
		{"Near linear scaling", "no", "no", "no", "no", "yes (checks linear in edges; see fig3)"},
		{"Localizes bugs", "no", "no", "no", "no", "yes (failed check names edge + filter)"},
	}
	fmt.Printf("%-34s %-12s %-9s %-9s %-5s %s\n", "feature", "minesweeper", "bagpipe", "plankton", "arc", "lightyear")
	for _, r := range rows {
		fmt.Printf("%-34s %-12s %-9s %-9s %-5s %s\n", r.feature, r.minesweeper, r.bagpipe, r.plankton, r.arc, r.lightyear)
	}
}

func table2(eng *engine.Engine) {
	header("Table 2: Figure-1 no-transit safety checks")
	n := netgen.Fig1(netgen.Fig1Options{})
	rep := verifySafety(eng, netgen.Fig1NoTransitProblem(n))
	printChecks(rep)
	fmt.Printf("verdict: OK=%v, %d checks in %v (max %d vars / %d clauses per check)\n",
		rep.OK(), rep.NumChecks(), rep.TotalTime, rep.MaxVars(), rep.MaxCons())

	fmt.Println("\nwith the §2.1 bug (import at R1 does not tag 100:1):")
	buggy := verifySafety(eng, netgen.Fig1NoTransitProblem(netgen.Fig1(netgen.Fig1Options{OmitTransitTag: true})))
	fmt.Print(buggy.Summary())
}

func table3(eng *engine.Engine) {
	header("Table 3: Figure-1 liveness checks")
	n := netgen.Fig1(netgen.Fig1Options{})
	rep, err := verifyLiveness(eng, netgen.Fig1LivenessProblem(n))
	if err != nil {
		fatal(err)
	}
	printChecks(rep)
	fmt.Printf("verdict: OK=%v, %d checks in %v\n", rep.OK(), rep.NumChecks(), rep.TotalTime)

	fmt.Println("\nwith the §2.2 bug (R3 keeps incoming communities):")
	buggy, err := verifyLiveness(eng, netgen.Fig1LivenessProblem(netgen.Fig1(netgen.Fig1Options{ForgetStripAtR3: true})))
	if err != nil {
		fatal(err)
	}
	fmt.Print(buggy.Summary())
}

func printChecks(rep *core.Report) {
	fmt.Printf("property: %s\n", rep.Property)
	for _, r := range rep.Results {
		status := "PASS"
		if !r.OK {
			status = "FAIL"
		}
		fmt.Printf("  %s [%-15s] %s\n", status, r.Kind, r.Desc)
	}
}

func table4a(eng *engine.Engine) {
	header("Table 4a: WAN peering properties (11 properties)")
	p := netgen.DefaultWANParams()
	n := netgen.WAN(p, netgen.WANBugs{})
	at := netgen.RegionRouter(0, 0)
	for _, prop := range netgen.PeeringProperties(p.Regions) {
		t0 := time.Now()
		rep := verifySafety(eng, netgen.PeeringProblem(n, at, prop))
		fmt.Printf("  %-26s OK=%v  checks=%d  time=%v\n", prop.Name, rep.OK(), rep.NumChecks(), time.Since(t0))
	}
	fmt.Println("\nwith an injected inconsistent edge filter (missing bogon clause):")
	buggy := netgen.WAN(p, netgen.WANBugs{MissingBogonFilter: true})
	rep := verifySafety(eng, netgen.PeeringProblem(buggy, at, netgen.PeeringProperties(p.Regions)[0]))
	fmt.Print(rep.Summary())
}

func table4b(eng *engine.Engine) {
	header("Table 4b: WAN IP-reuse safety per region")
	p := netgen.DefaultWANParams()
	n := netgen.WAN(p, netgen.WANBugs{})
	for r := 0; r < p.Regions; r++ {
		outside := netgen.EdgeRouter(0)
		if r != 1 {
			outside = netgen.RegionRouter((r+1)%p.Regions, 0)
		}
		t0 := time.Now()
		rep := verifySafety(eng, netgen.IPReuseSafetyProblem(n, p, r, outside))
		fmt.Printf("  region %d (checked outside at %-10s) OK=%v checks=%d time=%v\n",
			r, outside, rep.OK(), rep.NumChecks(), time.Since(t0))
	}
	fmt.Println("\nwith the metadata bug (region 0 tags with region 1's community):")
	buggy := netgen.WAN(p, netgen.WANBugs{WrongRegionCommunity: true})
	rep := verifySafety(eng, netgen.IPReuseSafetyProblem(buggy, p, 0, netgen.RegionRouter(1, 0)))
	fmt.Print(rep.Summary())
}

func table4c(eng *engine.Engine) {
	header("Table 4c: WAN IP-reuse liveness per region")
	p := netgen.DefaultWANParams()
	n := netgen.WAN(p, netgen.WANBugs{})
	for r := 0; r < p.Regions; r++ {
		t0 := time.Now()
		rep, err := verifyLiveness(eng, netgen.IPReuseLivenessProblem(n, p, r))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  region %d: OK=%v checks=%d time=%v\n", r, rep.OK(), rep.NumChecks(), time.Since(t0))
	}
}

// fig3 reproduces the scaling comparison: for each mesh size N it reports
// the monolithic formula size and times (3a, 3c) and Lightyear's per-check
// maxima and times (3b, 3d).
// fig3 measures solving, so each size runs on a fresh cache-free engine:
// FullMesh router names are size-independent and a warm cache would serve
// larger sizes from smaller ones, corrupting the scaling comparison.
func fig3(sizes []int, msTimeout time.Duration, workers int) {
	header("Figure 3: Lightyear vs Minesweeper on synthetic full meshes")
	fmt.Printf("%-5s | %12s %12s %10s %10s | %10s %10s %10s %10s\n",
		"N", "MS vars", "MS cons", "MS solve", "MS total", "LY maxvars", "LY maxcons", "LY solve", "LY total")
	loc, pred := netgen.FullMeshProperty()
	for _, size := range sizes {
		n := netgen.FullMesh(size)
		ms := minesweeper.Verify(n, loc, pred, []core.GhostDef{netgen.FullMeshGhost(n)},
			minesweeper.Options{Timeout: msTimeout})
		msSolve, msTotal := ms.SolveTime.Round(time.Millisecond).String(), ms.TotalTime.Round(time.Millisecond).String()
		if ms.Unknown {
			msSolve, msTotal = "timeout", "timeout"
		} else if !ms.Holds {
			msSolve += "(!)"
		}
		sizeEng := engine.New(engine.Options{Workers: workers, CacheSize: -1})
		rep := verifySafety(sizeEng, netgen.FullMeshProblem(n))
		sizeEng.Close()
		ok := ""
		if !rep.OK() {
			ok = "(!)"
		}
		fmt.Printf("%-5d | %12d %12d %10s %10s | %10d %10d %10s %10s%s\n",
			size, ms.NumVars, ms.NumCons, msSolve, msTotal,
			rep.MaxVars(), rep.MaxCons(),
			rep.SolveTime().Round(time.Millisecond), rep.TotalTime.Round(time.Millisecond), ok)
	}
	fmt.Println("(MS = monolithic Minesweeper-style baseline; LY = Lightyear modular checks.")
	fmt.Println(" Expected shape: MS vars/cons grow ~quadratically and solve time explodes;")
	fmt.Println(" LY per-check size is constant and total time linear in edges.)")
}

// benchRow is one measured run in a -out document. The quantiles come from
// the internal/telemetry histograms the engine fills — the same series
// lyserve exposes at /metrics — not from ad-hoc stopwatches.
type benchRow struct {
	Name            string  `json:"name,omitempty"`
	Checks          uint64  `json:"checks"`
	ElapsedSeconds  float64 `json:"elapsed_seconds"`
	ChecksPerSec    float64 `json:"checks_per_sec"`
	AllocsPerCheck  float64 `json:"allocs_per_check,omitempty"`
	SolveP50Seconds float64 `json:"solve_p50_seconds,omitempty"`
	SolveP99Seconds float64 `json:"solve_p99_seconds,omitempty"`
	QueueP50Seconds float64 `json:"queue_wait_p50_seconds,omitempty"`
	QueueP99Seconds float64 `json:"queue_wait_p99_seconds,omitempty"`
	// Solver-depth dimensions: mean CDCL conflicts and learned clauses per
	// solved check, from the same core.SolveStats provenance every
	// CheckResult carries. Deliberately not omitempty — a recorded 0 means
	// "decided without search", which the committed trajectory should state
	// explicitly rather than omit.
	ConflictsPerCheck float64 `json:"conflicts_per_check"`
	LearnedPerCheck   float64 `json:"learned_clauses_per_check"`
}

// benchDoc is the -out JSON document: the experiment's headline measurement
// (inlined benchRow fields) plus optional per-backend rows.
type benchDoc struct {
	Experiment string `json:"experiment"`
	Scale      string `json:"scale,omitempty"`
	Workers    int    `json:"workers"`
	// Seed is the -seed the run was invoked with and Scenarios the number
	// of verification scenarios measured, so every committed document states
	// how to reproduce it and how much it covered.
	Seed      int64 `json:"seed"`
	Scenarios int   `json:"scenarios"`
	benchRow
	Rows []benchRow `json:"rows,omitempty"`
}

// benchQuantiles fills a row's solve and queue-wait quantiles from the
// recorder's histograms. backend narrows the solve histogram to one
// backend's series ("" aggregates all).
func benchQuantiles(rec *telemetry.Recorder, backend string, row *benchRow) {
	solve := rec.Histogram("lightyear_solve_seconds", "", nil, "backend")
	queue := rec.Histogram("lightyear_queue_wait_seconds", "", nil).With()
	if backend != "" {
		h := solve.With(backend)
		row.SolveP50Seconds, row.SolveP99Seconds = h.Quantile(0.50), h.Quantile(0.99)
		return
	}
	row.SolveP50Seconds, row.SolveP99Seconds = solve.Quantile(0.50), solve.Quantile(0.99)
	row.QueueP50Seconds, row.QueueP99Seconds = queue.Quantile(0.50), queue.Quantile(0.99)
}

// benchDepth fills the solver-depth dimensions from aggregated CDCL
// provenance. Zero solved checks (everything served from cache) leaves the
// per-check means at 0.
func (r *benchRow) benchDepth(depth core.SolveStats, solved uint64) {
	if solved == 0 {
		return
	}
	r.ConflictsPerCheck = float64(depth.Conflicts) / float64(solved)
	r.LearnedPerCheck = float64(depth.Learned) / float64(solved)
}

// benchRate derives the throughput fields once checks and elapsed are set.
func (r *benchRow) benchRate(allocs uint64) {
	if r.ElapsedSeconds > 0 {
		r.ChecksPerSec = float64(r.Checks) / r.ElapsedSeconds
	}
	if r.Checks > 0 {
		r.AllocsPerCheck = float64(allocs) / float64(r.Checks)
	}
}

// mallocs reads the process's cumulative allocation count; deltas around a
// run give allocations attributable to it (single-experiment runs only —
// the bench is not otherwise concurrent).
func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

func writeBench(path string, doc benchDoc) {
	if doc.Workers == 0 {
		doc.Workers = runtime.GOMAXPROCS(0)
	}
	writeDoc(path, doc)
}

func writeDoc(path string, doc any) {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchmark written to %s\n", path)
}

// wanSpec renders WAN parameters as the serializable generator spec compiled
// plans carry, so the bench's networks are built by the exact registry path
// the CLI and lyserve use.
func wanSpec(p netgen.WANParams) *netgen.GeneratorSpec {
	return &netgen.GeneratorSpec{
		Kind:             "wan",
		Regions:          p.Regions,
		RoutersPerRegion: p.RoutersPerRegion,
		EdgeRouters:      p.EdgeRouters,
		DCsPerRegion:     p.DCsPerRegion,
		PeersPerEdge:     p.PeersPerEdge,
	}
}

func wanExperiment(scale string, workers int, seed int64, out string) {
	header("§6.1 WAN scale run")
	var p netgen.WANParams
	switch scale {
	case "small":
		p = netgen.WANParams{Regions: 4, RoutersPerRegion: 3, EdgeRouters: 4, DCsPerRegion: 1, PeersPerEdge: 4}
	case "medium":
		p = netgen.WANParams{Regions: 8, RoutersPerRegion: 5, EdgeRouters: 8, DCsPerRegion: 2, PeersPerEdge: 8}
	case "large":
		p = netgen.WANParams{Regions: 12, RoutersPerRegion: 10, EdgeRouters: 16, DCsPerRegion: 2, PeersPerEdge: 12}
	default:
		fatal(fmt.Errorf("unknown wan scale %q", scale))
	}
	n := netgen.WAN(p, netgen.WANBugs{})
	fmt.Printf("WAN: %d routers, %d externals, %d directed sessions\n",
		len(n.Routers()), len(n.Externals()), n.NumEdges())

	// All three modes measure the same problem set: the wan-peering registry
	// suite scoped to the edge routers — the exact problems a production
	// plan {"name": "wan-peering", "routers": [...]} enumerates.
	suite, ok := netgen.Lookup("wan-peering")
	if !ok {
		fatal(fmt.Errorf("wan-peering suite not registered"))
	}
	params := netgen.SuiteParams{Regions: p.Regions}
	edgeRouters := n.RoutersByRole("edge")
	scope := netgen.Scope{Routers: edgeRouters}
	problems := suite.Problems(n, params, scope)

	// Mode 1 — sequential baseline: one worker, no cache, one problem at a
	// time (the paper's single-threaded deployment mode).
	t0 := time.Now()
	for _, prob := range problems {
		rep := core.VerifySafety(prob.Safety, core.Options{Workers: 1})
		if !rep.OK() {
			fmt.Printf("  unexpected failure: %s\n", prob.Name)
		}
	}
	seq := time.Since(t0)

	// Mode 2 — parallel checks only: shared pool, caching and dedup off.
	parEng := engine.New(engine.Options{Workers: workers, CacheSize: -1})
	t0 = time.Now()
	for _, prob := range problems {
		rep := verifySafety(parEng, prob.Safety)
		if !rep.OK() {
			fmt.Printf("  unexpected failure: %s\n", prob.Name)
		}
	}
	par := time.Since(t0)
	parEng.Close()

	// Mode 3 — the production path: the same suite compiled as a plan and
	// run on a fresh engine. Every problem is submitted before any is
	// awaited, so byte-identical filter checks across the sweep are solved
	// once and shared via the LRU cache / in-flight dedup.
	req := plan.Request{
		Network:    plan.Network{Generator: wanSpec(p)},
		Properties: []plan.Property{{Name: "wan-peering", Routers: edgeRouters}},
		Options:    plan.Options{WANRegions: p.Regions},
	}
	c, err := plan.Compile(req, nil)
	if err != nil {
		fatal(err)
	}
	rec := telemetry.New(0)
	eng := engine.New(engine.Options{Workers: workers, Telemetry: rec})
	alloc0 := mallocs()
	t0 = time.Now()
	res, err := plan.Run(eng, c, plan.RunConfig{})
	deduped := time.Since(t0)
	allocs := mallocs() - alloc0
	st := eng.Stats()
	eng.Close()
	if err != nil {
		fatal(err)
	}
	if !res.OK {
		fmt.Println("  unexpected failure in plan run")
	}

	fmt.Printf("%d problems (all %d peering properties x %d edge routers): sequential %v, parallel %v, plan on engine (dedup+cache) %v\n",
		len(problems), len(netgen.PeeringProperties(p.Regions)), len(edgeRouters),
		seq.Round(time.Millisecond), par.Round(time.Millisecond), deduped.Round(time.Millisecond))
	fmt.Printf("engine: %d checks submitted, %d solved, %d cache hits, %d dedup hits\n",
		st.ChecksSubmitted, st.ChecksSolved, st.CacheHits, st.DedupHits)
	fmt.Println("(paper §6.1: 16 minutes sequential for a 4-property subset across hundreds of")
	fmt.Println(" edge routers; this run sweeps the full 11-property suite, so compare modes")
	fmt.Println(" against each other, not against the paper's absolute figure)")

	if out != "" {
		// The headline measurement is the production path (mode 3): checks
		// completed per second on the plan run, allocations attributable to
		// it, and the latency quantiles from the engine's histograms.
		doc := benchDoc{Experiment: "wan", Scale: scale, Workers: workers,
			Seed: seed, Scenarios: len(problems)}
		doc.Checks = uint64(st.ChecksSubmitted)
		doc.ElapsedSeconds = deduped.Seconds()
		doc.benchRate(allocs)
		var depth core.SolveStats
		for _, bs := range st.Backends {
			depth.Add(bs.Solver)
		}
		doc.benchDepth(depth, st.ChecksSolved)
		benchQuantiles(rec, "", &doc.benchRow)
		writeBench(out, doc)
	}
}

// deltaExperiment measures the paper's incremental claim (§2): after a
// configuration change touching k routers, re-verification through
// internal/delta costs work proportional to k, not to the network. For
// each change size it mutates k edge routers' peer-import policies,
// re-verifies the wan-peering suite against the pinned baseline, and
// reports dirty checks, reused results, solved checks, and wall time next
// to the cold baseline — the incremental edition of Figure 3's scaling
// story.
func deltaExperiment(workers int) {
	header("delta: change size vs incremental re-verification cost")
	p := netgen.WANParams{Regions: 3, RoutersPerRegion: 2, EdgeRouters: 8, DCsPerRegion: 1, PeersPerEdge: 2}
	base := netgen.WAN(p, netgen.WANBugs{})
	// The incremental session runs on a compiled plan as its problem source
	// — the same source lyserve sessions pin — so the bench measures the
	// production incremental path, not a bespoke suite adapter.
	req := plan.Request{
		Network:    plan.Network{Generator: wanSpec(p)},
		Properties: []plan.Property{{Name: "wan-peering"}},
		Options:    plan.Options{WANRegions: p.Regions},
	}
	fmt.Printf("WAN: %d routers, %d externals, %d directed sessions; plan %s\n",
		len(base.Routers()), len(base.Externals()), base.NumEdges(), "wan-peering")

	fmt.Printf("%-18s | %8s %8s %8s %8s | %10s\n",
		"change", "checks", "dirty", "reused", "solved", "time")
	for _, k := range []int{0, 1, 2, 4, 8} {
		// Fresh engine + session per change size, so each row pays its own
		// cold baseline and the incremental run is not cross-contaminated.
		c, err := plan.Compile(req, nil)
		if err != nil {
			fatal(err)
		}
		eng := engine.New(engine.Options{Workers: workers})
		v := delta.NewVerifierFor(eng, c)
		v.SetWorkload(c.Workload())
		cold, err := v.Baseline(netgen.WAN(p, netgen.WANBugs{}))
		if err != nil {
			fatal(err)
		}
		mutated := netgen.WAN(p, netgen.WANBugs{})
		for i := 0; i < k; i++ {
			netgen.TightenPeerImports(mutated, netgen.EdgeRouter(i))
		}
		res, err := v.Update(mutated)
		if err != nil {
			fatal(err)
		}
		eng.Close()
		if !cold.OK || !res.OK {
			fmt.Printf("  unexpected failure at change size %d\n", k)
		}
		if k == 0 {
			fmt.Printf("%-18s | %8d %8d %8d %8d | %10v\n",
				"cold baseline", cold.TotalChecks, cold.DirtyChecks, cold.ReusedResults,
				cold.Solved, cold.Elapsed().Round(time.Millisecond))
		}
		label := fmt.Sprintf("%d router(s)", k)
		fmt.Printf("%-18s | %8d %8d %8d %8d | %10v\n",
			label, res.TotalChecks, res.DirtyChecks, res.ReusedResults,
			res.Solved, res.Elapsed().Round(time.Millisecond))
	}
	fmt.Println("(expected shape: dirty checks and solve work grow with the change size,")
	fmt.Println(" not the network; a 0-router change reuses every retained result.)")
}

// solverExperiment compares the solver backends on the wan-peering suite:
// the same compiled plan runs cold on a fresh engine per backend, so every
// row pays identical check-generation work and the rows differ only in how
// obligations are decided — one native solve, a heuristic-variant race
// (portfolio), or budget-tiered escalation (tiered).
func solverExperiment(workers int, seed int64, out string) {
	header("solver: backend comparison on wan-peering")
	p := netgen.WANParams{Regions: 3, RoutersPerRegion: 2, EdgeRouters: 6, DCsPerRegion: 1, PeersPerEdge: 2}
	req := plan.Request{
		Network:    plan.Network{Generator: wanSpec(p)},
		Properties: []plan.Property{{Name: "wan-peering"}},
		Options:    plan.Options{WANRegions: p.Regions},
	}
	// One recorder across the per-backend engines: the solve histogram is
	// partitioned by backend label, so per-row quantiles stay exact while
	// the queue-wait histogram aggregates the whole experiment.
	rec := telemetry.New(0)
	var rows []benchRow
	var doc benchDoc
	var totalAllocs uint64
	var totalDepth core.SolveStats
	var totalSolved uint64
	fmt.Printf("%-10s | %8s %8s %8s %8s %8s | %10s %10s\n",
		"backend", "checks", "solved", "unknown", "raced", "escal", "solve", "wall")
	for _, name := range solver.Names() {
		if name == solver.RemoteName {
			// A bare remote spec has no worker fleet to ship to; the shard
			// experiment measures that backend against a real fleet.
			continue
		}
		r := req
		r.Options.Solver = &solver.Spec{Backend: name}
		c, err := plan.Compile(r, nil)
		if err != nil {
			fatal(err)
		}
		eng := engine.New(engine.Options{Workers: workers, Telemetry: rec})
		alloc0 := mallocs()
		t0 := time.Now()
		res, err := plan.Run(eng, c, plan.RunConfig{})
		wall := time.Since(t0)
		allocs := mallocs() - alloc0
		eng.Close()
		if err != nil {
			fatal(err)
		}
		if !res.OK {
			fmt.Printf("  unexpected failure under backend %s\n", name)
		}
		st := res.Properties[0].Stats
		fmt.Printf("%-10s | %8d %8d %8d %8d %8d | %10v %10v\n",
			name, st.Checks, st.Solved, st.Unknown, st.Raced, st.Escalated,
			time.Duration(st.SolveNanos).Round(time.Microsecond), wall.Round(time.Millisecond))
		row := benchRow{Name: name, Checks: uint64(st.Checks), ElapsedSeconds: wall.Seconds()}
		row.benchRate(allocs)
		row.benchDepth(st.Solver, uint64(st.Solved))
		benchQuantiles(rec, name, &row)
		rows = append(rows, row)
		doc.Checks += row.Checks
		doc.ElapsedSeconds += row.ElapsedSeconds
		totalAllocs += allocs
		totalDepth.Add(st.Solver)
		totalSolved += uint64(st.Solved)
	}
	if out != "" {
		doc.Experiment, doc.Workers, doc.Rows = "solver", workers, rows
		doc.Seed, doc.Scenarios = seed, len(rows)
		doc.benchRate(totalAllocs)
		doc.benchDepth(totalDepth, totalSolved)
		benchQuantiles(rec, "", &doc.benchRow)
		writeBench(out, doc)
	}
	fmt.Println("(tiered matches native when every check fits the quick tier — escalations")
	fmt.Println(" would appear in 'escal'; portfolio trades CPU for per-check latency")
	fmt.Println(" robustness, racing variants and cancelling the losers.)")
}

// admissionExperiment sweeps tenant count × per-tenant quota on one shared
// engine: every tenant floods the engine with the same stream of peering
// workloads through engine.Submit, and the table reports how the admission
// layer (per-tenant token quotas, shed-before-queue) and the weighted-fair
// dispatcher shape p50/p99 queue wait and the rejection rate. Quota 0 is
// the unlimited baseline: nothing is rejected and every tenant's backlog
// queues, so its tail wait is the cost of *not* shedding.
func admissionExperiment(workers int) {
	header("admission: tenant count × per-tenant quota sweep")
	p := netgen.WANParams{Regions: 2, RoutersPerRegion: 1, EdgeRouters: 2, DCsPerRegion: 1, PeersPerEdge: 2}
	n := netgen.WAN(p, netgen.WANBugs{})
	suite, ok := netgen.Lookup("wan-peering")
	if !ok {
		fatal(fmt.Errorf("wan-peering suite not registered"))
	}
	problems := suite.Problems(n, netgen.SuiteParams{Regions: p.Regions}, netgen.Scope{})
	const perTenant = 48 // workloads each tenant submits
	unitCost := len(problems[0].Safety.Checks(core.Options{}))
	fmt.Printf("workload: %d submissions/tenant, ~%d checks each (%d problems cycled)\n",
		perTenant, unitCost, len(problems))
	fmt.Printf("%-8s %-14s | %8s %8s %8s | %10s %10s\n",
		"tenants", "quota", "admitted", "rejected", "rate", "p50 wait", "p99 wait")

	for _, tenants := range []int{1, 2, 4} {
		for _, quota := range []int{0, 8 * unitCost, 2 * unitCost} {
			eng := engine.New(engine.Options{
				Workers:   workers,
				Admission: engine.Admission{PerTenantQuota: quota},
			})
			var (
				mu       sync.Mutex
				waits    []time.Duration
				rejected int
				jobs     []*engine.Job
			)
			var wg sync.WaitGroup
			for t := 0; t < tenants; t++ {
				wg.Add(1)
				go func(t int) {
					defer wg.Done()
					tenant := fmt.Sprintf("tenant-%d", t)
					for i := 0; i < perTenant; i++ {
						prob := problems[i%len(problems)]
						j, err := eng.Submit(context.Background(), engine.Workload{
							Safety: prob.Safety,
							Tenant: tenant,
						})
						mu.Lock()
						if err != nil {
							rejected++ // shed before queueing; no retry
						} else {
							jobs = append(jobs, j)
						}
						mu.Unlock()
					}
				}(t)
			}
			wg.Wait()
			for _, j := range jobs {
				j.Wait()
				waits = append(waits, j.Stats().QueueWait())
			}
			eng.Close()

			total := tenants * perTenant
			label := "unlimited"
			if quota > 0 {
				label = fmt.Sprintf("%d checks", quota)
			}
			fmt.Printf("%-8d %-14s | %8d %8d %7.1f%% | %10v %10v\n",
				tenants, label, len(jobs), rejected, 100*float64(rejected)/float64(total),
				percentile(waits, 0.50).Round(time.Microsecond),
				percentile(waits, 0.99).Round(time.Microsecond))
		}
	}
	fmt.Println("(tight quotas trade rejections for bounded queue wait: admitted work")
	fmt.Println(" starts sooner because excess load was shed at the door, and the fair")
	fmt.Println(" dispatcher keeps the admitted tails balanced across tenants.)")
}

// percentile returns the p-th percentile (0..1) of the sorted copy of d.
func percentile(d []time.Duration, p float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), d...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// faults demonstrates §4.5: the verified no-transit property survives
// random link failures in simulation.
func faults() {
	header("§4.5 fault tolerance: verified safety under random failures")
	n := netgen.Fig1(netgen.Fig1Options{})
	prob := netgen.Fig1NoTransitProblem(n)
	rep := core.VerifySafety(prob, core.Options{})
	fmt.Printf("static verification: OK=%v\n", rep.OK())

	rng := rand.New(rand.NewSource(42))
	links := [][2]topology.NodeID{{"R1", "R2"}, {"R1", "R3"}, {"R2", "R3"}}
	violations := 0
	trials := 200
	for trial := 0; trial < trials; trial++ {
		s := sim.New(n, []core.GhostDef{netgen.FromISP1Ghost(n)})
		s.Seed(int64(trial))
		r := routemodel.NewRoute(routemodel.MustPrefix("8.8.0.0/16"))
		r.ASPath = []uint32{174}
		r.AddCommunity(netgen.CommTransit) // adversarial announcement
		s.Announce(topology.Edge{From: "ISP1", To: "R1"}, r)
		c := routemodel.NewRoute(routemodel.MustPrefix("10.42.1.0/24"))
		c.ASPath = []uint32{64512}
		s.Announce(topology.Edge{From: "Customer", To: "R3"}, c)
		for _, l := range links {
			if rng.Intn(2) == 0 {
				s.FailLink(l[0], l[1])
			}
		}
		if v := s.Run(20000).CheckSafety(prob.Property.Loc, prob.Property.Pred); v != nil {
			violations++
		}
	}
	fmt.Printf("simulated %d random failure scenarios: %d violations (expect 0)\n", trials, violations)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lybench:", err)
	os.Exit(1)
}

// pacedBackend holds a worker slot for at least floor of wall clock per
// solve on top of the real solve, emulating a worker machine's per-check
// service time. The shard sweep runs every fleet size on one benchmark
// host, so the fleets cannot differ in CPU — the floor makes worker
// capacity (slots × fleet size) the resource that binds, the same way
// dedicated per-worker cores would in a deployment.
type pacedBackend struct {
	inner solver.Backend
	floor time.Duration
}

func (p pacedBackend) Name() string { return p.inner.Name() }

func (p pacedBackend) Solve(ctx context.Context, ob *core.Obligation, b solver.Budget) solver.Outcome {
	t0 := time.Now()
	out := p.inner.Solve(ctx, ob, b)
	if d := p.floor - time.Since(t0); d > 0 {
		select {
		case <-ctx.Done():
		case <-time.After(d):
		}
	}
	return out
}

// shardRow is one fleet size in the shard experiment's -out document: the
// usual throughput fields plus the fabric-side accounting that shows where
// the checks actually ran.
type shardRow struct {
	benchRow
	FleetSize     int                  `json:"fleet_size"`
	RemoteSolves  int64                `json:"remote_solves"`
	Failovers     int64                `json:"failovers"`
	Fallbacks     int64                `json:"fallbacks"`
	RPCP50Seconds float64              `json:"rpc_p50_seconds"`
	RPCP99Seconds float64              `json:"rpc_p99_seconds"`
	PerWorker     []fabric.WorkerStats `json:"per_worker"`
}

// shardExperiment measures how sat-stress throughput scales with the size
// of the distributed solver fleet. Each row starts a fresh in-process fleet
// of fabric workers on loopback listeners — real HTTP, real wire
// serialization, the same Server lyworker runs — and pushes one hard
// pigeonhole obligation per (router, holes) pair through a remote-backed
// engine with caching disabled, so every hard check pays a genuine remote
// solve. Workers are capped at slotsPerWorker concurrent solves and pace
// each solve to a wall-clock service floor (pacedBackend), modeling
// fixed-size worker machines: every in-process "worker" shares the bench
// host's cores, so raw CPU scaling is not observable here — what the sweep
// measures is the coordinator's side of the fabric (sharding, pipelining,
// slot admission) as fleet capacity slots×workers grows, which is exactly
// the resource a real deployment adds with each machine. The engine's own
// worker pool matches the fleet's total slot count, so coordinator-side
// concurrency grows with the fleet the way a deployment's would.
func shardExperiment(seed int64, out string) {
	header("shard: solver fabric scaling on sat-stress")
	const (
		slotsPerWorker = 2
		serviceFloor   = 10 * time.Millisecond
	)
	// A deliberately small network: the sweep measures solver sharding, so
	// the per-edge trivial filter checks (pure RPC overhead) must not drown
	// the hard pigeonhole obligations that carry the search load.
	p := netgen.WANParams{Regions: 2, RoutersPerRegion: 1, EdgeRouters: 2, DCsPerRegion: 1, PeersPerEdge: 2}
	n := netgen.WAN(p, netgen.WANBugs{})
	// One hard obligation per (router, holes) pair: the anchor location is
	// part of the check key, so the fleet's consistent-hash ring spreads
	// the load across shards instead of pinning it to one worker.
	var problems []*core.SafetyProblem
	for _, r := range n.Routers() {
		for _, holes := range []int{3, 4, 5} {
			problems = append(problems, netgen.StressProblemAt(n, r, holes))
		}
	}
	fmt.Printf("workload: %d pigeonhole obligations across %d routers, %d solve slots/worker\n",
		len(problems), len(n.Routers()), slotsPerWorker)
	fmt.Printf("%-6s | %8s %8s %8s %8s | %10s %10s | %s\n",
		"fleet", "checks", "remote", "failover", "fallback", "rpc p50", "wall", "per-worker solves")

	var rows []shardRow
	for _, fleet := range []int{1, 2, 4} {
		rec := telemetry.New(0)
		addrs := make([]string, 0, fleet)
		servers := make([]*http.Server, 0, fleet)
		for i := 0; i < fleet; i++ {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fatal(err)
			}
			srv := &http.Server{Handler: fabric.NewServer(fabric.ServerOptions{
				Backend: pacedBackend{inner: solver.Native(0), floor: serviceFloor},
				Name:    fmt.Sprintf("bench-w%d", i),
				// Headroom over the modeled slot count absorbs the bursts
				// consistent hashing sends at a popular shard; the engine's
				// worker pool (slots × fleet) is what binds capacity.
				MaxConcurrent: 2 * slotsPerWorker,
			})}
			go srv.Serve(l)
			addrs = append(addrs, l.Addr().String())
			servers = append(servers, srv)
		}
		remote, err := fabric.New(fabric.Config{
			Workers:      addrs,
			MaxAttempts:  fleet,
			RetryBackoff: time.Millisecond,
			Recorder:     rec,
		})
		if err != nil {
			fatal(err)
		}
		eng := engine.New(engine.Options{
			Workers:   slotsPerWorker * fleet,
			CacheSize: -1,
			Backend:   remote,
			Telemetry: rec,
		})
		t0 := time.Now()
		jobs := make([]*engine.Job, 0, len(problems))
		for _, prob := range problems {
			j, err := eng.Submit(context.Background(), engine.Workload{Safety: prob})
			if err != nil {
				fatal(err)
			}
			jobs = append(jobs, j)
		}
		var checks uint64
		for _, j := range jobs {
			if rep := j.Wait(); !rep.OK() {
				fmt.Printf("  unexpected failure under fleet size %d\n", fleet)
			}
			checks += uint64(j.NumChecks())
		}
		wall := time.Since(t0)
		st := remote.Stats()
		eng.Close()
		remote.Close()
		for _, srv := range servers {
			srv.Close()
		}

		row := shardRow{FleetSize: fleet, Failovers: st.Failovers, Fallbacks: st.Fallbacks, PerWorker: st.Workers}
		row.Name = fmt.Sprintf("%d-worker fleet", fleet)
		row.Checks = checks
		row.ElapsedSeconds = wall.Seconds()
		row.benchRate(0)
		rpc := rec.Histogram("lightyear_fabric_rpc_seconds", "", nil, "worker")
		row.RPCP50Seconds, row.RPCP99Seconds = rpc.Quantile(0.50), rpc.Quantile(0.99)
		perWorker := ""
		for i, w := range st.Workers {
			row.RemoteSolves += w.Solved
			if i > 0 {
				perWorker += " "
			}
			perWorker += fmt.Sprintf("w%d:%d", i, w.Solved)
		}
		rows = append(rows, row)
		fmt.Printf("%-6d | %8d %8d %8d %8d | %10v %10v | %s\n",
			fleet, checks, row.RemoteSolves, st.Failovers, st.Fallbacks,
			time.Duration(row.RPCP50Seconds*float64(time.Second)).Round(time.Microsecond),
			wall.Round(time.Millisecond), perWorker)
	}
	if out != "" {
		doc := struct {
			Experiment       string     `json:"experiment"`
			Seed             int64      `json:"seed"`
			Scenarios        int        `json:"scenarios"`
			SlotsPerWorker   int        `json:"slots_per_worker"`
			ServiceFloorSecs float64    `json:"service_floor_seconds"`
			Obligations      int        `json:"obligations"`
			Speedup          float64    `json:"speedup_vs_one_worker"`
			Rows             []shardRow `json:"rows"`
		}{Experiment: "shard", Seed: seed, Scenarios: len(rows), SlotsPerWorker: slotsPerWorker,
			ServiceFloorSecs: serviceFloor.Seconds(), Obligations: len(problems), Rows: rows}
		if len(rows) > 1 && rows[0].ChecksPerSec > 0 {
			doc.Speedup = rows[len(rows)-1].ChecksPerSec / rows[0].ChecksPerSec
		}
		writeDoc(out, doc)
	}
	fmt.Println("(expected shape: wall time shrinks as workers join the ring — fleet")
	fmt.Println(" capacity, not the bench host, is the binding resource; 'fallback'")
	fmt.Println(" counts checks that exhausted every shard and solved locally.)")
}

// migrateRow is one line of the migrate experiment: an ordered walk or a
// safe-order search of a k-step plan, with the per-step delta-reuse
// evidence (dirty vs reused) and — for searches — the explored-state
// counters that show the memoization and commutativity cuts at work.
type migrateRow struct {
	Plan         string  `json:"plan"`
	Steps        int     `json:"steps"`
	Unordered    bool    `json:"unordered,omitempty"`
	Checks       int     `json:"checks"`
	DirtyPerStep float64 `json:"dirty_per_step"`
	ReusedPer    float64 `json:"reused_per_step"`
	SolvedPer    float64 `json:"solved_per_step"`
	StepsPerSec  float64 `json:"steps_per_sec"`
	StepSeconds  float64 `json:"step_walk_seconds"`
	TotalSeconds float64 `json:"elapsed_seconds"`
	SearchStates int     `json:"search_states,omitempty"`
	MemoHits     int     `json:"memo_hits,omitempty"`
	Pruned       int     `json:"pruned,omitempty"`
	SafeOrder    string  `json:"safe_order,omitempty"`
}

// migrateExperiment measures internal/migrate: a steps × change-size sweep
// of ordered plans (k commuting single-router tightenings on a WAN — each
// step's dirty subset stays the size of its own change while the plan
// grows), the same change sets declared unordered (the canonical-order cut
// collapses k! orderings to one explored chain of k states), and the fig1
// filter swap, where exactly one order of six is safe and the search must
// actually explore.
func migrateExperiment(workers int, seed int64, out string) {
	header("migrate: steps × change size, ordered walk and safe-order search")
	p := netgen.WANParams{Regions: 3, RoutersPerRegion: 2, EdgeRouters: 8, DCsPerRegion: 1, PeersPerEdge: 2}
	var rows []migrateRow

	runPlan := func(name string, mp migrate.Plan) {
		c, err := migrate.Compile(mp, nil)
		if err != nil {
			fatal(err)
		}
		// Fresh engine per plan: every row pays its own cold baseline and the
		// per-step numbers are not cross-contaminated by the shared cache.
		eng := engine.New(engine.Options{Workers: workers})
		res, err := migrate.Run(context.Background(), eng, c, migrate.RunConfig{})
		eng.Close()
		if err != nil {
			fatal(err)
		}
		if !res.OK {
			fmt.Printf("  unexpected failure: %s\n", res.Reason)
			return
		}
		row := migrateRow{Plan: name, Steps: c.NumSteps(), Unordered: mp.Unordered,
			SearchStates: res.SearchStates, MemoHits: res.MemoHits, Pruned: res.PrunedOrders,
			TotalSeconds: res.Elapsed().Seconds(), SafeOrder: strings.Join(res.OrderLabels, " ")}
		var stepNanos int64
		var dirty, reused, solved int
		for _, sr := range res.Steps {
			row.Checks = sr.Checks
			dirty += sr.Dirty
			reused += sr.Reused
			solved += sr.Solved
			stepNanos += sr.ElapsedNanos
		}
		if n := len(res.Steps); n > 0 {
			row.DirtyPerStep = float64(dirty) / float64(n)
			row.ReusedPer = float64(reused) / float64(n)
			row.SolvedPer = float64(solved) / float64(n)
		}
		row.StepSeconds = float64(stepNanos) / float64(time.Second)
		if stepNanos > 0 {
			row.StepsPerSec = float64(len(res.Steps)) / row.StepSeconds
		}
		rows = append(rows, row)
		mode := "ordered"
		if mp.Unordered {
			mode = fmt.Sprintf("search: %d states, %d memo, %d pruned", res.SearchStates, res.MemoHits, res.PrunedOrders)
		}
		fmt.Printf("%-22s | %5d steps | %8d checks | %7.1f dirty/step %8.1f reused/step | %8.1f steps/s | %10v | %s\n",
			name, row.Steps, row.Checks, row.DirtyPerStep, row.ReusedPer,
			row.StepsPerSec, res.Elapsed().Round(time.Millisecond), mode)
	}

	wanPlan := func(k int, unordered bool) migrate.Plan {
		return migrate.Plan{
			Network:    &plan.Network{Generator: wanSpec(p)},
			Properties: []plan.Property{{Name: "wan-peering"}},
			Options:    plan.Options{WANRegions: p.Regions, Workers: workers},
			Steps:      migrate.Steps(netgen.WANTightenSteps(k)),
			Unordered:  unordered,
		}
	}
	for _, k := range []int{2, 4, 8} {
		runPlan(fmt.Sprintf("wan-tighten-%d", k), wanPlan(k, false))
	}
	for _, k := range []int{2, 4, 8} {
		runPlan(fmt.Sprintf("wan-tighten-%d-search", k), wanPlan(k, true))
	}
	runPlan("fig1-filter-swap-search", migrate.Plan{
		Network:    &plan.Network{Generator: &netgen.GeneratorSpec{Kind: "fig1"}},
		Properties: []plan.Property{{Name: "fig1-no-transit"}},
		Options:    plan.Options{Workers: workers},
		Steps:      migrate.Steps(netgen.Fig1FilterSwap()),
		Unordered:  true,
	})

	if out != "" {
		doc := struct {
			Experiment string       `json:"experiment"`
			Workers    int          `json:"workers"`
			Seed       int64        `json:"seed"`
			Scenarios  int          `json:"scenarios"`
			Rows       []migrateRow `json:"rows"`
		}{Experiment: "migrate", Workers: workers, Seed: seed, Scenarios: len(rows), Rows: rows}
		if doc.Workers == 0 {
			doc.Workers = runtime.GOMAXPROCS(0)
		}
		writeDoc(out, doc)
	}
	fmt.Println("(expected shape: dirty/step tracks the per-step change, not the plan")
	fmt.Println(" length; unordered commuting sets verify k states, not k! orders; the")
	fmt.Println(" fig1 swap finds its single safe order of six after a real search.)")
}

// corpusRow is one synthesizer family's aggregate of the corpus sweep: how
// many members ran, the check volume, the planted-bug detection score, and
// the per-family solve-time envelope from the lightyear_corpus_solve_seconds
// histogram — the same series lyserve exposes at /metrics.
type corpusRow struct {
	Family          string  `json:"family"`
	Members         int     `json:"members"`
	Checks          uint64  `json:"checks"`
	Planted         int     `json:"planted"`
	Detected        int     `json:"detected"`
	SolveP50Seconds float64 `json:"solve_p50_seconds"`
	SolveP99Seconds float64 `json:"solve_p99_seconds"`
}

// corpusDoc is the -out document of the corpus experiment (BENCH_corpus.json
// in this repo's committed trajectory).
type corpusDoc struct {
	Experiment     string      `json:"experiment"`
	Workers        int         `json:"workers"`
	Seed           int64       `json:"seed"`
	Scenarios      int         `json:"scenarios"`
	Planted        int         `json:"planted"`
	Detected       int         `json:"detected"`
	DetectionRate  float64     `json:"detection_rate"`
	Checks         uint64      `json:"checks"`
	ElapsedSeconds float64     `json:"elapsed_seconds"`
	FuzzWalks      int         `json:"fuzz_walks"`
	Reproducible   bool        `json:"reproducible"`
	Rows           []corpusRow `json:"rows"`
}

// corpusExperiment sweeps the default scenario roster: >= 30 deterministic
// topologies across every synthesizer family, each verified under the full
// wan-peering property set with a planted bug, grading detection against
// the member's ground truth. Every member is also regenerated and
// byte-compared (the reproducibility contract), and one clean member per
// family takes a property-preserving fuzz walk whose result must still
// verify. A detection or grading miss fails the run with exit 1 — the
// sweep asserts 100% detection, it does not merely report it.
func corpusExperiment(workers int, seed int64, members int, out string) {
	header("corpus: randomized scenario sweep with planted-bug ground truth")
	roster := corpus.DefaultRoster(seed)
	if members > 0 && members < len(roster) {
		roster = roster[:members]
	}
	suite, ok := netgen.Lookup(corpus.PropertySuite)
	if !ok {
		fatal(fmt.Errorf("suite %q not registered", corpus.PropertySuite))
	}
	rec := telemetry.New(0)
	corpus.SetTelemetry(rec)
	defer corpus.SetTelemetry(nil)

	type famAgg struct {
		members, planted, detected int
		checks                     uint64
		first                      corpus.Member
	}
	agg := map[string]*famAgg{}
	var order []string
	planted, detected, misgraded := 0, 0, 0
	reproducible := true
	var totalChecks uint64
	t0 := time.Now()
	fmt.Printf("%-36s | %7s %8s %9s | %s\n", "member", "routers", "checks", "time", "detection")
	for _, m := range roster {
		// Reproducibility: regenerating the member (and its canonical
		// reference) must be byte-identical.
		text, err := m.DSL()
		if err != nil {
			fatal(err)
		}
		if again, err := m.DSL(); err != nil || again != text {
			fmt.Printf("  %s: regeneration is not byte-identical\n", m.Ref())
			reproducible = false
		}
		rt, err := corpus.Parse(m.Ref())
		if err != nil {
			fatal(err)
		}
		if again, err := rt.DSL(); err != nil || again != text {
			fmt.Printf("  %s: reference round-trip diverges\n", m.Ref())
			reproducible = false
		}

		n, gt, err := m.Build()
		if err != nil {
			fatal(err)
		}
		failing, checks, elapsed := corpusVerify(n, suite, workers)
		corpus.ObserveSolve(m.Family, elapsed.Seconds())
		totalChecks += checks

		a := agg[m.Family]
		if a == nil {
			a = &famAgg{first: m}
			agg[m.Family] = a
			order = append(order, m.Family)
		}
		a.members++
		a.checks += checks

		verdict := "clean: ok"
		graded := true
		if gt != nil {
			planted++
			a.planted++
			hit, unexpected := 0, 0
			for _, name := range failing {
				if strings.HasPrefix(name, gt.Property+"@") {
					hit++
				} else {
					unexpected++
				}
			}
			switch {
			case hit > 0 && unexpected == 0:
				verdict = fmt.Sprintf("DETECTED %s (%d problems)", gt.Property, hit)
				detected++
				a.detected++
			case hit > 0:
				verdict = fmt.Sprintf("detected %s, but %d unrelated failures", gt.Property, unexpected)
				graded = false
			default:
				verdict = fmt.Sprintf("MISSED %s", gt.Property)
				graded = false
			}
		} else if len(failing) > 0 {
			verdict = fmt.Sprintf("clean member FAILED %d problems", len(failing))
			graded = false
		}
		if !graded {
			misgraded++
		}
		fmt.Printf("%-36s | %7d %8d %9v | %s\n",
			m.Ref(), len(n.Routers()), checks, elapsed.Round(time.Millisecond), verdict)
	}
	elapsed := time.Since(t0)

	// Fuzz soak: a seeded property-preserving walk on one clean member per
	// family; the mutated network must still verify the full suite.
	fuzzWalks := 0
	fmt.Println("fuzz soak (property-preserving walks):")
	for _, fam := range order {
		m := agg[fam].first
		m.Bug = ""
		n, _, err := m.Build()
		if err != nil {
			fatal(err)
		}
		res, err := corpus.Fuzz(n, seed, 4)
		if err != nil {
			fatal(err)
		}
		failing, _, _ := corpusVerify(res.Network, suite, workers)
		fuzzWalks++
		if len(failing) > 0 {
			fmt.Printf("  %s: %d mutations BROKE %d problems (verifier or fuzzer bug)\n",
				m.Ref(), len(res.Trail), len(failing))
			misgraded++
		} else {
			fmt.Printf("  %s: %d mutations, suite still verifies\n", m.Ref(), len(res.Trail))
		}
	}

	solve := rec.Histogram("lightyear_corpus_solve_seconds", "", nil, "family")
	var rows []corpusRow
	fmt.Printf("%-10s | %7s %8s %8s %8s | %10s %10s\n",
		"family", "members", "checks", "planted", "detected", "p50", "p99")
	for _, fam := range order {
		a := agg[fam]
		h := solve.With(fam)
		row := corpusRow{Family: fam, Members: a.members, Checks: a.checks,
			Planted: a.planted, Detected: a.detected,
			SolveP50Seconds: h.Quantile(0.50), SolveP99Seconds: h.Quantile(0.99)}
		rows = append(rows, row)
		fmt.Printf("%-10s | %7d %8d %8d %8d | %10v %10v\n",
			fam, a.members, a.checks, a.planted, a.detected,
			time.Duration(row.SolveP50Seconds*float64(time.Second)).Round(time.Millisecond),
			time.Duration(row.SolveP99Seconds*float64(time.Second)).Round(time.Millisecond))
	}
	rate := 0.0
	if planted > 0 {
		rate = float64(detected) / float64(planted)
	}
	fmt.Printf("corpus: %d members, %d planted bugs, %d detected (%.0f%%), %d checks in %v\n",
		len(roster), planted, detected, rate*100, totalChecks, elapsed.Round(time.Millisecond))

	if out != "" {
		doc := corpusDoc{Experiment: "corpus", Workers: workers, Seed: seed,
			Scenarios: len(roster), Planted: planted, Detected: detected,
			DetectionRate: rate, Checks: totalChecks,
			ElapsedSeconds: elapsed.Seconds(), FuzzWalks: fuzzWalks,
			Reproducible: reproducible, Rows: rows}
		if doc.Workers == 0 {
			doc.Workers = runtime.GOMAXPROCS(0)
		}
		writeDoc(out, doc)
	}
	if misgraded > 0 || detected < planted || !reproducible {
		fatal(fmt.Errorf("corpus sweep failed: %d/%d detected, %d misgraded, reproducible=%v",
			detected, planted, misgraded, reproducible))
	}
}

// corpusVerify runs the full property suite over one member on a fresh
// engine (cold per member, like the wan experiment's plan mode: all
// problems submitted before any is awaited) and returns the failing problem
// names, the submitted check volume, and the wall time.
func corpusVerify(n *topology.Network, suite netgen.Suite, workers int) ([]string, uint64, time.Duration) {
	problems := suite.Problems(n, netgen.SuiteParams{}, netgen.Scope{})
	eng := engine.New(engine.Options{Workers: workers})
	defer eng.Close()
	t0 := time.Now()
	jobs := make([]*engine.Job, len(problems))
	for i, p := range problems {
		j, err := eng.Submit(context.Background(), engine.Workload{Safety: p.Safety})
		if err != nil {
			fatal(err)
		}
		jobs[i] = j
	}
	var failing []string
	for i, j := range jobs {
		if !j.Wait().OK() {
			failing = append(failing, problems[i].Name)
		}
	}
	elapsed := time.Since(t0)
	return failing, uint64(eng.Stats().ChecksSubmitted), elapsed
}
