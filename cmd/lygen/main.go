// Command lygen generates synthetic network configurations in the
// Lightyear configuration language: the Figure-1 running example, the §6.2
// full-mesh scaling networks, and the §6.1-style synthetic WAN, optionally
// with injected configuration bugs.
//
// Usage:
//
//	lygen -topo fig1 > fig1.cfg
//	lygen -topo fullmesh -size 20 > mesh20.cfg
//	lygen -topo wan -regions 5 -routers-per-region 4 -edge-routers 4 > wan.cfg
//	lygen -topo fig1 -bug omit-tag > buggy.cfg
package main

import (
	"flag"
	"fmt"
	"os"

	"lightyear/internal/netgen"
)

func main() {
	var (
		topo    = flag.String("topo", "fig1", "topology: fig1, fullmesh, wan")
		size    = flag.Int("size", 10, "full mesh: number of routers")
		regions = flag.Int("regions", 3, "wan: number of regions")
		perReg  = flag.Int("routers-per-region", 2, "wan: routers per region")
		edges   = flag.Int("edge-routers", 2, "wan: internet edge routers")
		dcs     = flag.Int("dcs-per-region", 1, "wan: data centers per region")
		peers   = flag.Int("peers-per-edge", 2, "wan: peers per edge router")
		bug     = flag.String("bug", "", "inject a bug: omit-tag, strip-at-r2, skip-export-filter, forget-strip, missing-bogon, wrong-region-comm, missing-local-pref")
		outPath = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var text string
	switch *topo {
	case "fig1":
		o := netgen.Fig1Options{}
		switch *bug {
		case "":
		case "omit-tag":
			o.OmitTransitTag = true
		case "strip-at-r2":
			o.StripAtR2 = true
		case "skip-export-filter":
			o.SkipExportFilter = true
		case "forget-strip":
			o.ForgetStripAtR3 = true
		default:
			fatal(fmt.Errorf("unknown fig1 bug %q", *bug))
		}
		text = netgen.Fig1DSL(o)
	case "fullmesh":
		if *bug != "" {
			fatal(fmt.Errorf("fullmesh has no injectable bugs"))
		}
		text = netgen.FullMeshDSL(*size)
	case "wan":
		b := netgen.WANBugs{}
		switch *bug {
		case "":
		case "missing-bogon":
			b.MissingBogonFilter = true
		case "wrong-region-comm":
			b.WrongRegionCommunity = true
		case "missing-local-pref":
			b.MissingLocalPref = true
		default:
			fatal(fmt.Errorf("unknown wan bug %q", *bug))
		}
		text = netgen.WANDSL(netgen.WANParams{
			Regions:          *regions,
			RoutersPerRegion: *perReg,
			EdgeRouters:      *edges,
			DCsPerRegion:     *dcs,
			PeersPerEdge:     *peers,
		}, b)
	default:
		fatal(fmt.Errorf("unknown topology %q", *topo))
	}

	if *outPath == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*outPath, []byte(text), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *outPath, len(text))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lygen:", err)
	os.Exit(1)
}
