package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lightyear/internal/netgen"
	"lightyear/internal/plan"
	"lightyear/internal/topology"
)

func baseFlags() cliFlags {
	return cliFlags{Properties: "fig1-no-transit", WANRegions: 3, Set: map[string]bool{}}
}

func writeConfig(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "net.cfg")
	if err := os.WriteFile(path, []byte(netgen.Fig1DSL(netgen.Fig1Options{})), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBuildRequestFlags(t *testing.T) {
	f := baseFlags()
	f.ConfigPath = writeConfig(t)
	f.Properties = "wan-peering, wan-ip-reuse"
	f.Routers = "edge-0,wan-r0-0"
	f.DiffPath = "old.cfg"
	f.Workers = 8
	req, err := buildRequest(f)
	if err != nil {
		t.Fatal(err)
	}
	if req.Network.ConfigPath != f.ConfigPath {
		t.Errorf("network = %+v", req.Network)
	}
	if len(req.Properties) != 2 || req.Properties[0].Name != "wan-peering" ||
		req.Properties[1].Name != "wan-ip-reuse" {
		t.Fatalf("properties = %+v", req.Properties)
	}
	for _, p := range req.Properties {
		if len(p.Routers) != 2 || p.Routers[0] != "edge-0" {
			t.Fatalf("router scope not applied: %+v", p)
		}
	}
	if req.Options.Baseline == nil || req.Options.Baseline.ConfigPath != "old.cfg" {
		t.Errorf("baseline = %+v", req.Options.Baseline)
	}
	if req.Options.Workers != 8 || req.Options.WANRegions != 3 {
		t.Errorf("options = %+v", req.Options)
	}
}

// TestBuildRequestUnknownPropertyListsSuites: the error must name every
// registered suite so the caller can pick one.
func TestBuildRequestUnknownPropertyListsSuites(t *testing.T) {
	f := baseFlags()
	f.ConfigPath = "net.cfg"
	f.Properties = "no-such-suite"
	_, err := buildRequest(f)
	var usage *usageError
	if err == nil {
		t.Fatal("unknown property accepted")
	}
	if u, ok := err.(*usageError); !ok {
		t.Fatalf("error %v (%T) is not a usage error", err, err)
	} else {
		usage = u
	}
	for _, name := range netgen.SuiteNames() {
		if !strings.Contains(usage.Error(), name) {
			t.Errorf("error should list suite %q: %v", name, usage)
		}
	}
}

func TestBuildRequestMissingConfigIsUsageError(t *testing.T) {
	_, err := buildRequest(baseFlags())
	if _, ok := err.(*usageError); !ok {
		t.Fatalf("missing -config should be a usage error, got %v (%T)", err, err)
	}
}

// TestBuildRequestFromPlanFile: -plan loads the saved request; explicitly
// set flags override its fields, defaults do not.
func TestBuildRequestFromPlanFile(t *testing.T) {
	saved := plan.Request{
		Network: plan.Network{Generator: &netgen.GeneratorSpec{Kind: "wan", Regions: 2}},
		Properties: []plan.Property{
			{Name: "wan-peering", Routers: []topology.NodeID{"edge-0"}},
			{Name: "wan-ip-liveness"},
		},
		Options: plan.Options{WANRegions: 2, Workers: 2},
	}
	b, err := json.Marshal(saved)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	f := baseFlags()
	f.PlanPath = path
	req, err := buildRequest(f)
	if err != nil {
		t.Fatal(err)
	}
	if req.Network.Generator == nil || len(req.Properties) != 2 ||
		req.Options.WANRegions != 2 || req.Options.Workers != 2 {
		t.Fatalf("plan file not honored: %+v", req)
	}

	// Explicit -workers overrides the plan; the untouched -property default
	// does not.
	f.Workers = 16
	f.Set["workers"] = true
	req, err = buildRequest(f)
	if err != nil {
		t.Fatal(err)
	}
	if req.Options.Workers != 16 || len(req.Properties) != 2 {
		t.Fatalf("flag override wrong: %+v", req)
	}
}

// TestBuildRequestPlanRoutersOnly: -plan with -routers (and no -property)
// re-scopes the saved plan's own properties instead of replacing them with
// the -property flag default.
func TestBuildRequestPlanRoutersOnly(t *testing.T) {
	saved := plan.Request{
		Network: plan.Network{Generator: &netgen.GeneratorSpec{Kind: "wan", Regions: 2}},
		Properties: []plan.Property{
			{Name: "wan-peering", Routers: []topology.NodeID{"edge-0"}},
			{Name: "wan-ip-reuse"},
		},
		Options: plan.Options{WANRegions: 2},
	}
	b, err := json.Marshal(saved)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	f := baseFlags()
	f.PlanPath = path
	f.Routers = "wan-r0-0"
	f.Set["routers"] = true
	req, err := buildRequest(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Properties) != 2 || req.Properties[0].Name != "wan-peering" ||
		req.Properties[1].Name != "wan-ip-reuse" {
		t.Fatalf("-routers alone must keep the plan's properties: %+v", req.Properties)
	}
	for i, p := range req.Properties {
		if len(p.Routers) != 1 || p.Routers[0] != "wan-r0-0" {
			t.Fatalf("property %d not re-scoped: %+v", i, p)
		}
	}
}

// TestBuildRequestSolverAndRegions: -solver compiles into the plan's solver
// option and -regions into per-property region scopes.
func TestBuildRequestSolverAndRegions(t *testing.T) {
	f := baseFlags()
	f.ConfigPath = writeConfig(t)
	f.Properties = "wan-ip-reuse"
	f.Regions = "0, 2"
	f.Solver = "tiered:500"
	req, err := buildRequest(f)
	if err != nil {
		t.Fatal(err)
	}
	if s := req.Options.Solver; s == nil || s.Backend != "tiered" || s.Budget != 500 {
		t.Fatalf("solver spec = %+v", req.Options.Solver)
	}
	if len(req.Properties) != 1 || len(req.Properties[0].Regions) != 2 ||
		req.Properties[0].Regions[0] != 0 || req.Properties[0].Regions[1] != 2 {
		t.Fatalf("region scope = %+v", req.Properties)
	}

	f.Solver = "warp-drive"
	if _, err := buildRequest(f); err == nil {
		t.Fatal("unknown solver backend accepted")
	} else if _, ok := err.(*usageError); !ok {
		t.Fatalf("unknown solver backend: %v (%T), want usage error", err, err)
	}

	f.Solver = ""
	f.Regions = "two"
	if _, err := buildRequest(f); err == nil {
		t.Fatal("bad region index accepted")
	} else if _, ok := err.(*usageError); !ok {
		t.Fatalf("bad region index: %v (%T), want usage error", err, err)
	}
}

// TestExitCodeContract: 0 verified, 1 failed, 3 unknown-only.
func TestExitCodeContract(t *testing.T) {
	cases := []struct {
		res  plan.Result
		want int
	}{
		{plan.Result{OK: true}, 0},
		{plan.Result{OK: false, Failures: 2}, 1},
		{plan.Result{OK: false, Failures: 1, Unknowns: 3}, 1}, // a real failure dominates
		{plan.Result{OK: false, Unknowns: 3}, 3},
	}
	for _, c := range cases {
		if got := exitCode(&c.res); got != c.want {
			t.Errorf("exitCode(%+v) = %d, want %d", c.res, got, c.want)
		}
	}
}

// TestBuildRequestTenantFlags: -tenant and -store-retain flow into the
// plan's execution options (and override a saved plan's values only when
// set, like every other flag).
func TestBuildRequestTenantFlags(t *testing.T) {
	f := baseFlags()
	f.ConfigPath = writeConfig(t)
	f.Tenant = "netops"
	f.StoreRetain = 3
	req, err := buildRequest(f)
	if err != nil {
		t.Fatal(err)
	}
	if req.Options.Tenant != "netops" {
		t.Errorf("tenant = %q, want netops", req.Options.Tenant)
	}
	if req.Options.StoreRetain != 3 {
		t.Errorf("store_retain = %d, want 3", req.Options.StoreRetain)
	}

	// A saved plan's tenant survives unless -tenant was set explicitly.
	planPath := filepath.Join(t.TempDir(), "plan.json")
	saved := plan.Request{
		Network:    plan.Network{ConfigPath: f.ConfigPath},
		Properties: []plan.Property{{Name: "fig1-no-transit"}},
		Options:    plan.Options{Tenant: "saved-tenant"},
	}
	b, _ := json.Marshal(saved)
	if err := os.WriteFile(planPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	f2 := baseFlags()
	f2.PlanPath = planPath
	req2, err := buildRequest(f2)
	if err != nil {
		t.Fatal(err)
	}
	if req2.Options.Tenant != "saved-tenant" {
		t.Errorf("saved plan tenant = %q, want saved-tenant", req2.Options.Tenant)
	}
	f3 := baseFlags()
	f3.PlanPath = planPath
	f3.Tenant = "cli-tenant"
	f3.Set["tenant"] = true
	req3, err := buildRequest(f3)
	if err != nil {
		t.Fatal(err)
	}
	if req3.Options.Tenant != "cli-tenant" {
		t.Errorf("overridden tenant = %q, want cli-tenant", req3.Options.Tenant)
	}
}
