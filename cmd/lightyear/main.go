// Command lightyear verifies BGP control-plane properties of a network
// configuration using modular local checks.
//
// Usage:
//
//	lightyear -config net.cfg -property fig1-no-transit [-workers N] [-cache N] [-json] [-verbose]
//	lightyear -config new.cfg -diff old.cfg -property wan-peering   # incremental re-verification
//	lightyear -config net.cfg -store DIR                            # persistent result store
//
// The configuration file uses the DSL of internal/config (see cmd/lygen to
// generate examples). Properties, like the local invariants of the paper's
// deployment, are defined in code and registered in the internal/netgen
// suite registry; the built-in property suites are:
//
//	fig1-no-transit   Table 2: routes from ISP1 never reach ISP2
//	fig1-liveness     Table 3: customer prefixes reach ISP2
//	fullmesh          §6.2: no-transit on a generated full mesh
//	wan-peering       Table 4a: the 11 peering properties at every router
//	wan-ip-reuse      Table 4b: regional reused-IP isolation
//	wan-ip-liveness   Table 4c: reused routes propagate within each region
//
// All problems of the selected suite run as concurrent jobs on a shared
// internal/engine Engine, so identical local checks across the suite's
// properties and routers are solved once and served from the engine's
// result cache thereafter. -workers sizes the engine's worker pool and
// -cache its LRU result-cache capacity (0 = engine default, negative
// disables caching).
//
// With -store DIR the engine's result cache is replaced by the
// internal/store persistent journal in DIR: results recorded by earlier
// runs (of any suite) are served without re-solving, so a rerun after a
// process restart reports reused results. -cache is ignored when -store is
// set.
//
// With -diff old.cfg the command runs incrementally via internal/delta: it
// first verifies old.cfg as the baseline, then re-verifies -config against
// it, re-solving only the checks the configuration change dirtied, and
// reports {changed routers, dirty checks, reused results, solved}. Exit
// status reflects the -config (updated) network; a failing baseline is
// reported but only fails the run if the update also fails.
//
// With -json, the command emits a single machine-readable JSON document on
// stdout (the same report encoding the lyserve HTTP API returns) instead of
// the human-readable summary.
//
// Exit status contract:
//
//	0  every problem in the suite verified (skipped optional problems allowed)
//	1  at least one local check failed, or verification could not run
//	   (unreadable or unparsable configuration, invalid liveness path)
//	2  usage error (missing -config, unknown -property suite)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"lightyear/internal/config"
	"lightyear/internal/core"
	"lightyear/internal/delta"
	"lightyear/internal/engine"
	"lightyear/internal/netgen"
	"lightyear/internal/store"
	"lightyear/internal/topology"
)

// problemOutcome is the per-problem record of a suite run, shared by the
// human-readable and -json output paths.
type problemOutcome struct {
	Name       string             `json:"name"`
	Skipped    bool               `json:"skipped,omitempty"`
	SkipReason string             `json:"skip_reason,omitempty"`
	Report     *engine.ReportJSON `json:"report,omitempty"`
	Stats      *engine.JobStats   `json:"stats,omitempty"`

	report *core.Report
}

// runOutput is the -json document: per-problem reports plus engine-level
// dedup/cache statistics.
type runOutput struct {
	Suite    string           `json:"suite"`
	OK       bool             `json:"ok"`
	Problems []problemOutcome `json:"problems"`
	Engine   engine.Stats     `json:"engine"`
	Store    *store.Stats     `json:"store,omitempty"`
}

func main() {
	var (
		configPath = flag.String("config", "", "path to the network configuration file")
		property   = flag.String("property", "fig1-no-transit", "property suite to verify")
		workers    = flag.Int("workers", 0, "parallel check workers (0 = GOMAXPROCS)")
		cacheSize  = flag.Int("cache", 0, "engine result-cache capacity (0 = default, <0 disables; ignored with -store)")
		storeDir   = flag.String("store", "", "persistent result-store directory (replaces the in-memory cache)")
		diffPath   = flag.String("diff", "", "baseline configuration: verify -config incrementally against it")
		jsonOut    = flag.Bool("json", false, "emit the report as machine-readable JSON")
		verbose    = flag.Bool("verbose", false, "print every check result")
		regions    = flag.Int("wan-regions", 3, "region count assumed for WAN properties")
	)
	flag.Parse()

	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "lightyear: -config is required (generate one with lygen)")
		os.Exit(2)
	}
	suite, ok := netgen.Lookup(*property)
	if !ok {
		fmt.Fprintf(os.Stderr, "lightyear: unknown property %q (have: %s)\n",
			*property, strings.Join(netgen.SuiteNames(), ", "))
		os.Exit(2)
	}

	n := parseConfig(*configPath)
	if !*jsonOut {
		fmt.Printf("parsed %s: %d routers, %d externals, %d sessions\n",
			*configPath, len(n.Routers()), len(n.Externals()), n.NumEdges())
	}

	engOpts := engine.Options{Workers: *workers, CacheSize: *cacheSize}
	var resultStore *store.Store
	if *storeDir != "" {
		var err error
		resultStore, err = store.Open(*storeDir)
		if err != nil {
			fatal(err)
		}
		defer resultStore.Close()
		resultStore.SetFingerprint(n.Fingerprint())
		if !*jsonOut {
			fmt.Printf("store: %s (%d results on disk)\n", *storeDir, resultStore.Len())
		}
		engOpts.Cache = resultStore
	}
	eng := engine.New(engOpts)
	defer eng.Close()

	if *diffPath != "" {
		runDiff(eng, resultStore, suite, *diffPath, n, netgen.SuiteParams{Regions: *regions}, *jsonOut)
		return
	}

	problems := suite.Build(n, netgen.SuiteParams{Regions: *regions})
	outcomes := make([]problemOutcome, len(problems))
	jobs := make([]*engine.Job, len(problems))

	// Submit every problem before collecting any, so the engine dedups
	// identical checks across the whole suite.
	for i, p := range problems {
		outcomes[i].Name = p.Name
		switch {
		case p.Safety != nil:
			jobs[i] = eng.SubmitSafety(p.Safety)
		case p.Liveness != nil:
			job, err := eng.SubmitLiveness(p.Liveness)
			if err != nil {
				if p.Optional {
					// e.g. a WAN region path absent from this config.
					outcomes[i].Skipped = true
					outcomes[i].SkipReason = err.Error()
					continue
				}
				fatal(err)
			}
			jobs[i] = job
		}
	}

	allOK := true
	for i := range problems {
		if jobs[i] == nil {
			if !*jsonOut && outcomes[i].Skipped {
				fmt.Printf("skip %s: %s\n", outcomes[i].Name, outcomes[i].SkipReason)
			}
			continue
		}
		rep := jobs[i].Wait()
		st := jobs[i].Stats()
		outcomes[i].report = rep
		outcomes[i].Stats = &st
		if !rep.OK() {
			allOK = false
		}
		if !*jsonOut {
			printReport(rep, *verbose)
			fmt.Printf("  job: %d checks, %d cache hits, %d dedup hits\n",
				st.Checks, st.CacheHits, st.DedupHits)
		}
	}

	if *jsonOut {
		out := runOutput{Suite: suite.Name, OK: allOK, Problems: outcomes, Engine: eng.Stats()}
		if resultStore != nil {
			st := resultStore.Stats()
			out.Store = &st
		}
		for i := range out.Problems {
			if r := out.Problems[i].report; r != nil {
				enc := engine.EncodeReport(r)
				out.Problems[i].Report = &enc
			}
		}
		encoded, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(append(encoded, '\n'))
	} else {
		st := eng.Stats()
		fmt.Printf("engine: %d checks submitted, %d solved, %d cache hits, %d dedup hits\n",
			st.ChecksSubmitted, st.ChecksSolved, st.CacheHits, st.DedupHits)
		printStoreSummary(resultStore)
	}

	if !allOK {
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Println("all properties verified")
	}
}

func printReport(rep *core.Report, verbose bool) {
	if verbose {
		for _, r := range rep.Results {
			status := "PASS"
			if !r.OK {
				status = "FAIL"
			}
			fmt.Printf("  %s [%s] %s (%d vars, %d clauses, solve %v)\n",
				status, r.Kind, r.Desc, r.NumVars, r.NumCons, r.SolveTime)
		}
	}
	fmt.Print(rep.Summary())
}

func parseConfig(path string) *topology.Network {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	n, err := config.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	return n
}

// printStoreSummary reports persistent-store reuse in the human output: the
// "reused" count is how many checks this run served from results recorded
// by earlier processes (plus intra-run refetches).
func printStoreSummary(st *store.Store) {
	if st == nil {
		return
	}
	s := st.Stats()
	fmt.Printf("store: %d results loaded, %d reused, %d recorded\n", s.Loaded, s.Hits, s.Puts)
}

// deltaProblemJSON is one problem of a delta run with its report encoded.
type deltaProblemJSON struct {
	delta.ProblemOutcome
	Report *engine.ReportJSON `json:"report,omitempty"`
}

// deltaRunJSON is the JSON form of one delta.Result.
type deltaRunJSON struct {
	*delta.Result
	Problems []deltaProblemJSON `json:"problems"`
}

func encodeDeltaResult(r *delta.Result) deltaRunJSON {
	out := deltaRunJSON{Result: r}
	for _, p := range r.Problems {
		pj := deltaProblemJSON{ProblemOutcome: p}
		if p.Report != nil {
			enc := engine.EncodeReport(p.Report)
			pj.Report = &enc
		}
		out.Problems = append(out.Problems, pj)
	}
	return out
}

// diffOutput is the -diff -json document.
type diffOutput struct {
	Suite    string       `json:"suite"`
	OK       bool         `json:"ok"`
	Baseline deltaRunJSON `json:"baseline"`
	Update   deltaRunJSON `json:"update"`
	Engine   engine.Stats `json:"engine"`
	Store    *store.Stats `json:"store,omitempty"`
}

// runDiff is the -diff mode body: verify the baseline configuration, then
// re-verify the new one incrementally, reporting the delta statistics.
func runDiff(eng *engine.Engine, st *store.Store, suite netgen.Suite, oldPath string,
	newNet *topology.Network, params netgen.SuiteParams, jsonOut bool) {
	oldNet := parseConfig(oldPath)
	if !jsonOut {
		fmt.Printf("baseline %s: %d routers, %d externals, %d sessions\n",
			oldPath, len(oldNet.Routers()), len(oldNet.Externals()), oldNet.NumEdges())
	}
	if st != nil {
		st.SetFingerprint(oldNet.Fingerprint())
	}

	v := delta.NewVerifier(eng, suite, params)
	base, err := v.Baseline(oldNet)
	if err != nil {
		fatal(err)
	}
	if st != nil {
		st.SetFingerprint(newNet.Fingerprint())
	}
	upd, err := v.Update(newNet)
	if err != nil {
		fatal(err)
	}

	if jsonOut {
		out := diffOutput{Suite: suite.Name, OK: upd.OK,
			Baseline: encodeDeltaResult(base), Update: encodeDeltaResult(upd), Engine: eng.Stats()}
		if st != nil {
			s := st.Stats()
			out.Store = &s
		}
		encoded, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(append(encoded, '\n'))
	} else {
		fmt.Println(base)
		if !base.OK {
			fmt.Println("warning: baseline configuration does not verify")
		}
		if upd.Diff != nil {
			fmt.Printf("diff: %s; changed routers: %s\n", upd.Diff, joinIDs(upd.ChangedRouters))
		}
		fmt.Println(upd)
		for _, p := range upd.Problems {
			if p.Report != nil && !p.Report.OK() {
				fmt.Print(p.Report.Summary())
			}
		}
		est := eng.Stats()
		fmt.Printf("engine: %d checks submitted, %d solved, %d cache hits, %d dedup hits\n",
			est.ChecksSubmitted, est.ChecksSolved, est.CacheHits, est.DedupHits)
		printStoreSummary(st)
		if upd.OK {
			fmt.Println("updated configuration verified incrementally")
		}
	}
	if !upd.OK {
		os.Exit(1)
	}
}

func joinIDs(ids []topology.NodeID) string {
	if len(ids) == 0 {
		return "(none)"
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = string(id)
	}
	return strings.Join(parts, ", ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lightyear:", err)
	os.Exit(1)
}
