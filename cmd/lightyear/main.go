// Command lightyear verifies BGP control-plane properties of a network
// configuration using modular local checks.
//
// Usage:
//
//	lightyear -config net.cfg -property fig1-no-transit [-workers N] [-cache N] [-json] [-verbose]
//	lightyear -config net.cfg -property wan-peering,wan-ip-reuse        # several properties, one engine
//	lightyear -config net.cfg -property wan-peering -routers edge-0    # router-scoped properties
//	lightyear -config net.cfg -property wan-ip-reuse -regions 0,2      # region-scoped properties
//	lightyear -config new.cfg -diff old.cfg -property wan-peering      # incremental re-verification
//	lightyear -config net.cfg -store DIR                               # persistent result store
//	lightyear -config net.cfg -solver portfolio                        # race solver heuristics per check
//	lightyear -config net.cfg -solver tiered:1000                      # small budget first, escalate on Unknown
//	lightyear -config net.cfg -solver remote:h1:9101,h2:9101           # ship checks to a lyworker fleet
//	lightyear -config net.cfg -tenant ops -max-inflight 500            # tenancy + admission control
//	lightyear -plan plan.json                                          # run a saved verification plan
//	lightyear -migrate steps.json                                      # verify a migration plan step by step
//	lightyear -list                                                    # print the property registry
//	lightyear -corpus ring:42                                          # verify a generated corpus member
//	lightyear -corpus waxman:7:size=16,bug=no-bogons                   # corpus member with a planted bug
//	lightyear -corpus zoo:1 -corpus-graph net.graphml                  # imported TopologyZoo-style graph
//	lightyear -corpus list                                             # enumerate corpus families and knobs
//
// Every invocation is compiled into an internal/plan Request — the same
// declarative document lyserve accepts on POST /v2/verify — and run on a
// shared internal/engine Engine. The configuration file uses the DSL of
// internal/config (see cmd/lygen to generate examples). Properties are
// registered in the internal/netgen suite registry; -list prints them:
//
//	fig1-no-transit   Table 2: routes from ISP1 never reach ISP2
//	fig1-liveness     Table 3: customer prefixes reach ISP2
//	fullmesh          §6.2: no-transit on a generated full mesh
//	sat-stress        adversarial pigeonhole obligations exercising the solver backends
//	wan-peering       Table 4a: the 11 peering properties at every router
//	wan-ip-reuse      Table 4b: regional reused-IP isolation
//	wan-ip-liveness   Table 4c: reused routes propagate within each region
//
// -property accepts a comma-separated list; all listed properties run as
// one plan on one engine, so identical local checks shared across
// properties (and across the routers each property sweeps) are solved once
// and served from the engine's result cache thereafter. -routers scopes
// per-router properties (wan-peering, wan-ip-reuse) to a comma-separated
// router subset; -regions scopes regional properties (wan-ip-reuse,
// wan-ip-liveness) to a comma-separated list of 0-based region indices.
// -workers sizes the engine's worker pool and -cache its LRU result-cache
// capacity (0 = engine default, negative disables caching).
//
// -solver selects the solver backend checks are routed to, as
// "backend[:budget]" (the plan document's "solver" execution option):
//
//	native       one in-process CDCL solve per check (default); an optional
//	             budget caps SAT conflicts per check (checks that exceed it
//	             report UNKNOWN)
//	portfolio    race heuristic variants of the solver per check, first
//	             verdict wins, losers cancelled
//	tiered       solve with a small conflict budget first (default 2048, or
//	             the given budget), escalate to unlimited on Unknown
//
// With -corpus the network source is a scenario-corpus member reference
// (internal/corpus): family:seed plus optional knobs, deterministically
// synthesized and verified like any other network. Members default
// -property to wan-peering (the suite the corpus policy template
// instantiates), a bug=<property> knob plants a known violation whose
// detection is graded after the run, -corpus-emit prints the generated
// configuration instead of verifying it, and -corpus-graph attaches a
// GraphML or edge-list file to a zoo member. -corpus list enumerates the
// families, their knobs, the builtin graphs, and the plantable bugs.
//
// With -plan file.json the request is read from the file (the plan.Request
// JSON schema; see package internal/plan). Explicitly set flags override
// the corresponding plan fields: -config replaces the network source,
// -property/-routers/-regions the property list, -diff the baseline, and
// -workers/-cache/-store/-solver/-wan-regions the execution options.
//
// With -store DIR the engine's result cache is replaced by the
// internal/store persistent journal in DIR: results recorded by earlier
// runs (of any suite) are served without re-solving, so a rerun after a
// process restart reports reused results. -cache is ignored when -store is
// set. -store-retain N keeps only the results of the N most recently
// verified network fingerprints when the journal is compacted on open.
//
// -tenant names the principal the run's workloads are admitted and
// accounted under (the plan document's "tenant" execution option; the same
// identity lyserve reads from the X-Tenant header), and -max-inflight
// bounds the engine's admitted in-flight checks: a plan whose compiled
// check count exceeds the bound is rejected before any work starts, with
// the same typed admission error lyserve maps to HTTP 429 + Retry-After.
// -tenant-weights t1=3,t2=1 sets per-tenant weighted-fair dispatch weights
// (unlisted tenants weigh 1), matching lyserve's flag of the same name.
//
// With -trace the run records an end-to-end telemetry trace — compile,
// admit, queue, dispatch, solve:<backend>, cache, store spans with
// per-span durations and attributes — and prints the span tree to stderr
// after the report. The same span tree lyserve serves at /v1/traces/{id}.
// Solve spans carry the per-job solver-depth attributes (conflicts,
// decisions, restarts, learned), the same provenance every CheckResult now
// records (see -json's per-check "solver" object and -verbose's depth
// column).
//
// -log-level and -log-format configure the structured logger every
// component (engine, store) emits through: levels debug|info|warn|error,
// formats text (default for this CLI) or json. Slow or undecided checks
// are logged with their full solver provenance; see cmd/lyserve's
// -slow-conflicts/-slow-solve for the threshold knobs on the service.
//
// With -diff old.cfg the command runs incrementally via internal/delta: it
// first verifies old.cfg as the baseline, then re-verifies -config against
// it, re-solving only the checks the configuration change dirtied, and
// reports {changed routers, dirty checks, reused results, solved}. Exit
// status reflects the -config (updated) network; a failing baseline is
// reported but only fails the run if the update also fails. Incremental
// runs inherit the plan's property list and -routers scoping.
//
// With -json, the command emits a single machine-readable JSON document on
// stdout instead of the human-readable summary. Single-property unscoped
// runs keep the historical {suite, ok, problems, engine} encoding (the same
// report encoding lyserve's v1 API serves); multi-property or scoped runs
// emit the plan result encoding {ok, properties: [...], engine} that
// lyserve's v2 API serves.
//
// With -migrate steps.json the command verifies a migration plan instead of
// a single state: the file is a migrate.Plan JSON document — a baseline
// network source, a property list, and an ordered list of steps, each either
// a full replacement config ("config") or a named route-map edit
// ("mutation": {"kind": "insert-export-deny", "from": "R2", "to": "ISP2",
// "seq": 5, "match": "community:100:1"}). Every intermediate state is
// re-verified incrementally against the previous one (internal/delta), so a
// step re-solves only the checks its own change dirtied, and the first
// violating step is reported with its failing checks and witnesses. With
// "unordered": true the steps are treated as an unordered change set and the
// command searches for a safe ordering ("search_budget" bounds how many
// intermediate states the search may verify). -config, -tenant, -solver,
// -workers, -cache, -store, -store-retain, and -wan-regions override the
// corresponding plan fields, as with -plan.
//
// Exit status contract:
//
//	0  every problem of every property verified (skipped optional problems
//	   allowed); for -migrate: every step of the walked (or found) order
//	1  at least one local check failed, or verification could not run
//	   (unreadable or unparsable configuration, invalid liveness path);
//	   for -migrate: the plan violated at some step k (see the output)
//	2  usage error (missing network source, unknown -property or -solver,
//	   malformed steps.json)
//	3  no check failed, but at least one check was left UNKNOWN (solver
//	   budget exhausted) — the properties are neither proven nor refuted;
//	   raise the budget or switch -solver to decide them; for -migrate:
//	   the walk stopped on an undecided step
//	4  -migrate only: no safe order exists for the unordered change set
//	   (or the search budget was exhausted before one was found)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"lightyear/internal/core"
	"lightyear/internal/corpus"
	"lightyear/internal/delta"
	"lightyear/internal/engine"
	"lightyear/internal/fabric"
	"lightyear/internal/logging"
	"lightyear/internal/migrate"
	"lightyear/internal/netgen"
	"lightyear/internal/plan"
	"lightyear/internal/solver"
	"lightyear/internal/store"
	"lightyear/internal/telemetry"
	"lightyear/internal/topology"
)

// cliFlags carries the parsed command line into buildRequest, with Set
// recording which flags were given explicitly (plan-file overrides).
type cliFlags struct {
	ConfigPath  string
	Corpus      string // corpus member reference, or "list"
	CorpusGraph string // graph file attached to a zoo corpus member
	Properties  string
	Routers     string
	Regions     string // property scope: comma-separated region indices
	PlanPath    string
	MigratePath string // migration plan (migrate.Plan JSON)
	DiffPath    string
	Workers     int
	Cache       int
	Store       string
	StoreRetain int
	Solver      string
	WANRegions  int
	Tenant      string
	MaxInflight int    // engine admission: max in-flight checks (0 = unlimited)
	Weights     string // per-tenant dispatch weights, e.g. t1=3,t2=1
	Set         map[string]bool
}

func (f cliFlags) set(name string) bool { return f.Set[name] }

// buildRequest compiles the flags into the plan.Request the run executes.
// Usage errors (the exit-2 class) are returned as *usageError.
func buildRequest(f cliFlags) (plan.Request, error) {
	var req plan.Request
	if f.PlanPath != "" {
		src, err := os.ReadFile(f.PlanPath)
		if err != nil {
			return req, err
		}
		if err := json.Unmarshal(src, &req); err != nil {
			return req, fmt.Errorf("%s: %w", f.PlanPath, err)
		}
	}
	switch {
	case f.Corpus != "":
		if f.ConfigPath != "" {
			return req, &usageError{"-config and -corpus are mutually exclusive"}
		}
		m, err := corpusMember(f)
		if err != nil {
			return req, err
		}
		if m.GraphText != "" {
			// An out-of-band graph file cannot travel in a member reference;
			// inline the emitted DSL instead (same network, same bug state).
			text, err := m.DSL()
			if err != nil {
				return req, err
			}
			req.Network = plan.Network{Config: text}
		} else {
			req.Network = plan.Network{Corpus: f.Corpus}
		}
	case f.PlanPath == "" || f.set("config"):
		if f.ConfigPath == "" {
			return req, &usageError{"-config is required (generate one with lygen, pick -corpus, or pass -plan)"}
		}
		req.Network = plan.Network{ConfigPath: f.ConfigPath}
	}
	var routers []topology.NodeID
	if f.Routers != "" {
		for _, r := range strings.Split(f.Routers, ",") {
			if r = strings.TrimSpace(r); r != "" {
				routers = append(routers, topology.NodeID(r))
			}
		}
	}
	var regions []int
	if f.Regions != "" {
		for _, r := range strings.Split(f.Regions, ",") {
			r = strings.TrimSpace(r)
			if r == "" {
				continue
			}
			idx, err := strconv.Atoi(r)
			if err != nil {
				return req, &usageError{fmt.Sprintf("-regions: bad region index %q (want 0-based integers)", r)}
			}
			regions = append(regions, idx)
		}
	}
	props := f.Properties
	if f.Corpus != "" && !f.set("property") {
		// Corpus members are built for the peering suite; make it the
		// default property instead of the fig1 demo.
		props = corpus.PropertySuite
	}
	switch {
	case f.PlanPath == "" || f.set("property"):
		req.Properties = nil
		for _, name := range strings.Split(props, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := netgen.Lookup(name); !ok {
				return req, &usageError{fmt.Sprintf("unknown property %q (have: %s)",
					name, strings.Join(netgen.SuiteNames(), ", "))}
			}
			req.Properties = append(req.Properties, plan.Property{Name: name, Routers: routers, Regions: regions})
		}
		if len(req.Properties) == 0 {
			return req, &usageError{fmt.Sprintf("-property lists no properties (have: %s)",
				strings.Join(netgen.SuiteNames(), ", "))}
		}
	default:
		// -routers / -regions alone re-scope the saved plan's own property
		// list.
		if f.set("routers") {
			for i := range req.Properties {
				req.Properties[i].Routers = routers
			}
		}
		if f.set("regions") {
			for i := range req.Properties {
				req.Properties[i].Regions = regions
			}
		}
	}
	if f.PlanPath == "" || f.set("solver") {
		req.Options.Solver = nil
		if f.Solver != "" {
			spec, err := solver.ParseSpec(f.Solver)
			if err != nil {
				return req, &usageError{err.Error()}
			}
			req.Options.Solver = &spec
		}
	}
	if f.DiffPath != "" {
		req.Options.Baseline = &plan.Network{ConfigPath: f.DiffPath}
	}
	if f.PlanPath == "" || f.set("workers") {
		req.Options.Workers = f.Workers
	}
	if f.PlanPath == "" || f.set("cache") {
		req.Options.Cache = f.Cache
	}
	if f.PlanPath == "" || f.set("store") {
		req.Options.Store = f.Store
	}
	if f.PlanPath == "" || f.set("store-retain") {
		req.Options.StoreRetain = f.StoreRetain
	}
	if f.PlanPath == "" || f.set("wan-regions") {
		req.Options.WANRegions = f.WANRegions
	}
	if f.PlanPath == "" || f.set("tenant") {
		req.Options.Tenant = f.Tenant
	}
	if err := req.Validate(); err != nil {
		var reqErr *plan.RequestError
		if errors.As(err, &reqErr) {
			return req, &usageError{strings.TrimPrefix(reqErr.Error(), "plan: ")}
		}
		return req, err
	}
	return req, nil
}

type usageError struct{ msg string }

func (e *usageError) Error() string { return e.msg }

// corpusMember resolves -corpus (plus an optional -corpus-graph file) into
// the member the run verifies.
func corpusMember(f cliFlags) (corpus.Member, error) {
	graphText := ""
	if f.CorpusGraph != "" {
		src, err := os.ReadFile(f.CorpusGraph)
		if err != nil {
			return corpus.Member{}, err
		}
		graphText = string(src)
	}
	m, err := corpus.ParseWithGraphText(f.Corpus, graphText)
	if err != nil {
		return m, &usageError{strings.TrimPrefix(err.Error(), "corpus: ")}
	}
	if f.CorpusGraph != "" && m.Family != "zoo" {
		return m, &usageError{"-corpus-graph only applies to zoo corpus members"}
	}
	return m, nil
}

// printCorpusFamilies renders the corpus enumeration: families with their
// knobs, the builtin zoo graphs, and the plantable bugs.
func printCorpusFamilies(prefix string) {
	for _, fam := range corpus.Families() {
		fmt.Printf("%s%-17s %s\n", prefix, fam.Name, fam.Desc)
		for _, k := range fam.Knobs {
			fmt.Printf("%s    %-10s %-10s %s\n", prefix, k.Name, k.Default, k.Desc)
		}
	}
	fmt.Printf("%sbuiltin zoo graphs: %s\n", prefix, strings.Join(corpus.BuiltinGraphNames(), ", "))
	fmt.Printf("%splantable bugs (bug=...): %s\n", prefix, strings.Join(corpus.BugNames(), ", "))
}

// meanDegree is the average BGP neighbor count over configured routers.
func meanDegree(n *topology.Network) float64 {
	routers := n.Routers()
	if len(routers) == 0 {
		return 0
	}
	total := 0
	for _, r := range routers {
		total += n.Degree(r)
	}
	return float64(total) / float64(len(routers))
}

// printCorpusDetection compares the run's failing problems against the
// member's planted-bug ground truth: the planted property must fail and
// every other failure is unexpected.
func printCorpusDetection(res *plan.Result, gt *corpus.GroundTruth) {
	if gt == nil {
		fmt.Println("corpus: clean member (no planted bug)")
		return
	}
	detected, unexpected := 0, 0
	for _, pr := range res.Properties {
		for _, p := range pr.Problems {
			if p.OK || p.Skipped {
				continue
			}
			if strings.HasPrefix(p.Name, gt.Property+"@") {
				detected++
			} else {
				unexpected++
			}
		}
	}
	verdict := "NOT DETECTED"
	if detected > 0 {
		verdict = fmt.Sprintf("DETECTED (%d failing problems)", detected)
	}
	fmt.Printf("corpus: planted %s on session %s: %s\n", gt.Property, gt.Session, verdict)
	if unexpected > 0 {
		fmt.Printf("corpus: %d failing problems outside the planted property\n", unexpected)
	}
}

func main() {
	var f cliFlags
	flag.StringVar(&f.ConfigPath, "config", "", "path to the network configuration file")
	flag.StringVar(&f.Corpus, "corpus", "", "verify a corpus member (family:seed[:knob=value,...]), or \"list\" to enumerate families")
	flag.StringVar(&f.CorpusGraph, "corpus-graph", "", "GraphML or edge-list file for zoo corpus members")
	flag.StringVar(&f.Properties, "property", "fig1-no-transit", "comma-separated property suites to verify (corpus members default to wan-peering)")
	flag.StringVar(&f.Routers, "routers", "", "comma-separated router subset scoping per-router properties")
	flag.StringVar(&f.Regions, "regions", "", "comma-separated 0-based region indices scoping regional properties")
	flag.StringVar(&f.PlanPath, "plan", "", "run a saved plan.Request JSON file")
	flag.StringVar(&f.MigratePath, "migrate", "", "verify a migration plan (migrate.Plan JSON: baseline, properties, ordered steps)")
	flag.StringVar(&f.DiffPath, "diff", "", "baseline configuration: verify -config incrementally against it")
	flag.IntVar(&f.Workers, "workers", 0, "parallel check workers (0 = GOMAXPROCS)")
	flag.IntVar(&f.Cache, "cache", 0, "engine result-cache capacity (0 = default, <0 disables; ignored with -store)")
	flag.StringVar(&f.Store, "store", "", "persistent result-store directory (replaces the in-memory cache)")
	flag.IntVar(&f.StoreRetain, "store-retain", 0, "keep only the N most recently written network fingerprints in the store (0 = all)")
	flag.StringVar(&f.Solver, "solver", "", "solver backend: native, portfolio, or tiered as backend[:budget], or remote:host1,host2 for a worker fleet")
	flag.IntVar(&f.WANRegions, "wan-regions", 3, "region count assumed for WAN properties")
	flag.StringVar(&f.Tenant, "tenant", "", "tenant the run is admitted and accounted under")
	flag.IntVar(&f.MaxInflight, "max-inflight", 0, "admission: max in-flight checks on the engine (0 = unlimited)")
	flag.StringVar(&f.Weights, "tenant-weights", "", "per-tenant dispatch weights, e.g. t1=3,t2=1 (unlisted tenants weigh 1)")
	list := flag.Bool("list", false, "print the registered property suites and corpus families, then exit")
	corpusEmit := flag.Bool("corpus-emit", false, "print the corpus member's generated configuration and exit")
	jsonOut := flag.Bool("json", false, "emit the report as machine-readable JSON")
	verbose := flag.Bool("verbose", false, "print every check result")
	traceOut := flag.Bool("trace", false, "record an end-to-end telemetry trace and print its span tree to stderr")
	var logCfg logging.Config
	logCfg.RegisterFlags(flag.CommandLine, "text")
	flag.Parse()
	f.Set = map[string]bool{}
	flag.Visit(func(fl *flag.Flag) { f.Set[fl.Name] = true })

	logger, err := logCfg.Build(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lightyear:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	if *list {
		for _, s := range netgen.Suites() {
			fmt.Printf("%-17s %s\n", s.Name, s.Desc)
		}
		fmt.Println("\ncorpus families (-corpus family:seed[:knob=value,...]):")
		printCorpusFamilies("")
		return
	}
	if f.Corpus == "list" {
		printCorpusFamilies("")
		return
	}
	if *corpusEmit {
		if f.Corpus == "" {
			fmt.Fprintln(os.Stderr, "lightyear: -corpus-emit requires -corpus")
			os.Exit(2)
		}
		m, err := corpusMember(f)
		if err == nil {
			var text string
			if text, err = m.DSL(); err == nil {
				fmt.Print(text)
				return
			}
		}
		fmt.Fprintln(os.Stderr, "lightyear:", err)
		if _, usage := err.(*usageError); usage {
			os.Exit(2)
		}
		os.Exit(1)
	}

	if f.MigratePath != "" {
		os.Exit(runMigrate(f, *jsonOut, *traceOut, logger))
	}

	req, err := buildRequest(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lightyear:", err)
		if _, usage := err.(*usageError); usage {
			os.Exit(2)
		}
		os.Exit(1)
	}
	weights, err := engine.ParseWeights(f.Weights)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lightyear: -tenant-weights:", err)
		os.Exit(2)
	}

	// -trace records the whole run — compilation included — into a local
	// recorder whose span tree is printed once the run completes.
	var rec *telemetry.Recorder
	var tr *telemetry.Trace
	if *traceOut {
		rec = telemetry.New(0)
		tr = rec.StartTrace("cli", req.Options.Tenant)
	}
	// Remote solver backends (-solver remote:…) are constructed inside
	// plan.Compile; point the fabric at the run's sinks first.
	fabric.SetTelemetry(rec)
	fabric.SetLogger(logger)
	corpus.SetTelemetry(rec)

	cs := tr.StartSpan("compile")
	compiled, err := plan.Compile(req, nil)
	cs.End()
	if err != nil {
		var reqErr *plan.RequestError
		if errors.As(err, &reqErr) { // e.g. an invalid -routers scope
			fmt.Fprintln(os.Stderr, "lightyear:", strings.TrimPrefix(reqErr.Error(), "plan: "))
			os.Exit(2)
		}
		fatal(err)
	}
	tr.SetLabel(compiled.Label())
	if !*jsonOut {
		if path := req.Network.ConfigPath; path != "" {
			n := compiled.Network
			fmt.Printf("parsed %s: %d routers, %d externals, %d sessions\n",
				path, len(n.Routers()), len(n.Externals()), n.NumEdges())
		}
		if f.Corpus != "" {
			n := compiled.Network
			fmt.Printf("corpus %s: %d routers, %d externals, %d sessions, mean degree %.1f\n",
				f.Corpus, len(n.Routers()), len(n.Externals()), n.NumEdges(), meanDegree(n))
		}
		if b := req.Options.Baseline; b != nil && b.ConfigPath != "" {
			n := compiled.Baseline
			fmt.Printf("baseline %s: %d routers, %d externals, %d sessions\n",
				b.ConfigPath, len(n.Routers()), len(n.Externals()), n.NumEdges())
		}
	}

	engOpts := engine.Options{
		Workers:   req.Options.Workers,
		CacheSize: req.Options.Cache,
		Telemetry: rec,
		Logger:    logger,
		Admission: engine.Admission{MaxInFlightChecks: f.MaxInflight, Weights: weights},
	}
	var resultStore *store.Store
	if req.Options.Store != "" {
		resultStore, err = store.OpenOptions(req.Options.Store, store.Options{MaxFingerprints: req.Options.StoreRetain})
		if err != nil {
			fatal(err)
		}
		defer resultStore.Close()
		resultStore.SetTelemetry(rec)
		resultStore.SetLogger(logger)
		if !*jsonOut {
			fmt.Printf("store: %s (%d results on disk)\n", req.Options.Store, resultStore.Len())
		}
		engOpts.Cache = resultStore
	}
	eng := engine.New(engOpts)
	defer eng.Close()

	res, err := plan.Run(eng, compiled, plan.RunConfig{Store: resultStore, Trace: tr})
	if err != nil {
		var adm *engine.ErrAdmission
		if errors.As(err, &adm) {
			// The whole plan was shed before any check ran — the same
			// backpressure lyserve answers as HTTP 429 + Retry-After.
			fmt.Fprintf(os.Stderr, "lightyear: %v\n", adm)
			os.Exit(1)
		}
		fatal(err)
	}

	switch {
	case res.Update != nil: // delta-vs-baseline mode
		printDelta(res, compiled, *jsonOut, resultStore)
	case *jsonOut:
		printJSON(res, compiled)
	default:
		printHuman(res, compiled, *verbose, resultStore)
		if f.Corpus != "" {
			// buildRequest already validated the reference; resolve the
			// ground truth to grade the run against it.
			if m, err := corpusMember(f); err == nil {
				if gt, err := m.Plant(); err == nil {
					printCorpusDetection(res, gt)
				}
			}
		}
	}
	if rec != nil {
		// plan.Run finished the trace, landing it in the recorder's ring.
		if snap, ok := rec.Trace(tr.ID()); ok {
			snap.WriteTree(os.Stderr)
		}
	}
	os.Exit(exitCode(res))
}

// exitCode maps a plan result onto the CLI's exit contract: 0 verified,
// 1 a check failed (or a problem could not run), 3 nothing failed but at
// least one check was left UNKNOWN — the run exhausted its solver budget
// without refuting anything, which deserves a distinct signal from a real
// violation.
func exitCode(res *plan.Result) int {
	switch {
	case res.OK:
		return 0
	case res.Failures == 0 && res.Unknowns > 0:
		return 3
	default:
		return 1
	}
}

// legacySingleProperty reports whether the run must keep the historical
// single-suite output encoding.
func legacySingleProperty(c *plan.Compiled) bool {
	return len(c.Units) == 1 && c.Units[0].Property.Scope().Empty()
}

// printHuman renders the per-problem reports, per-property and engine
// accounting, and the final verdict line.
func printHuman(res *plan.Result, c *plan.Compiled, verbose bool, st *store.Store) {
	multi := len(res.Properties) > 1
	for _, pr := range res.Properties {
		if multi {
			scope := ""
			if len(pr.Property.Routers) > 0 {
				scope = fmt.Sprintf(" (routers %s)", joinIDs(pr.Property.Routers))
			}
			fmt.Printf("== property %s%s\n", pr.Property.Name, scope)
		}
		for _, p := range pr.Problems {
			switch {
			case p.Skipped:
				fmt.Printf("skip %s: %s\n", p.Name, p.SkipReason)
			case p.Failed:
				fmt.Printf("FAIL %s: %s\n", p.Name, p.SkipReason)
			default:
				printReport(p.Report, verbose)
				fmt.Printf("  job: %d checks, %d cache hits, %d dedup hits\n",
					p.Stats.Checks, p.Stats.CacheHits, p.Stats.DedupHits)
			}
		}
		if multi {
			fmt.Printf("== property %s: %d checks, %d cache hits, %d dedup hits, ok=%v\n",
				pr.Property.Name, pr.Stats.Checks, pr.Stats.CacheHits, pr.Stats.DedupHits, pr.OK)
		}
	}
	printEngineSummary(res.Engine)
	printStoreSummary(st)
	switch {
	case res.OK:
		fmt.Println("all properties verified")
	case res.Failures == 0 && res.Unknowns > 0:
		fmt.Printf("%d checks UNKNOWN (solver budget exhausted): properties undecided, not refuted\n", res.Unknowns)
	}
}

// printEngineSummary renders the engine counters plus the per-backend solve
// accounting (deterministic order).
func printEngineSummary(est engine.Stats) {
	fmt.Printf("engine: %d checks submitted, %d solved, %d cache hits, %d dedup hits\n",
		est.ChecksSubmitted, est.ChecksSolved, est.CacheHits, est.DedupHits)
	names := make([]string, 0, len(est.Backends))
	for name := range est.Backends {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bs := est.Backends[name]
		extra := ""
		if bs.Raced > 0 {
			extra += fmt.Sprintf(", %d variants raced", bs.Raced)
		}
		if bs.Escalated > 0 {
			extra += fmt.Sprintf(", %d escalated", bs.Escalated)
		}
		if bs.Unknown > 0 {
			extra += fmt.Sprintf(", %d unknown", bs.Unknown)
		}
		if bs.Solver.Depth() {
			extra += fmt.Sprintf(", %d conflicts / %d decisions", bs.Solver.Conflicts, bs.Solver.Decisions)
		}
		fmt.Printf("  backend %s: %d solved in %v%s\n",
			name, bs.Solved, time.Duration(bs.SolveNanos).Round(time.Microsecond), extra)
	}
}

func printReport(rep *core.Report, verbose bool) {
	if verbose {
		for _, r := range rep.Results {
			status := "PASS"
			if !r.OK {
				status = "FAIL"
			}
			depth := ""
			if r.Solver.Conflicts != 0 || r.Solver.Decisions != 0 {
				depth = fmt.Sprintf(", %d conflicts, %d decisions", r.Solver.Conflicts, r.Solver.Decisions)
			}
			fmt.Printf("  %s [%s] %s (%d vars, %d clauses, solve %v%s)\n",
				status, r.Kind, r.Desc, r.NumVars, r.NumCons, r.SolveTime, depth)
		}
	}
	fmt.Print(rep.Summary())
}

// printStoreSummary reports persistent-store reuse in the human output: the
// "reused" count is how many checks this run served from results recorded
// by earlier processes (plus intra-run refetches).
func printStoreSummary(st *store.Store) {
	if st == nil {
		return
	}
	s := st.Stats()
	fmt.Printf("store: %d results loaded, %d reused, %d recorded\n", s.Loaded, s.Hits, s.Puts)
}

// legacyProblemJSON and legacyRunJSON keep the historical single-suite
// -json document byte-compatible for existing consumers.
type legacyProblemJSON struct {
	Name       string             `json:"name"`
	Skipped    bool               `json:"skipped,omitempty"`
	SkipReason string             `json:"skip_reason,omitempty"`
	Report     *engine.ReportJSON `json:"report,omitempty"`
	Stats      *engine.JobStats   `json:"stats,omitempty"`
}

type legacyRunJSON struct {
	Suite    string              `json:"suite"`
	OK       bool                `json:"ok"`
	Problems []legacyProblemJSON `json:"problems"`
	Engine   engine.Stats        `json:"engine"`
	Store    *store.Stats        `json:"store,omitempty"`
}

func printJSON(res *plan.Result, c *plan.Compiled) {
	var doc any = res
	if legacySingleProperty(c) {
		out := legacyRunJSON{Suite: c.Units[0].Property.Name, OK: res.OK, Engine: res.Engine, Store: res.Store}
		for _, p := range res.Properties[0].Problems {
			out.Problems = append(out.Problems, legacyProblemJSON{
				Name: p.Name, Skipped: p.Skipped, SkipReason: p.SkipReason,
				Report: p.ReportJSON, Stats: p.Stats,
			})
		}
		doc = out
	}
	emitJSON(doc)
}

func emitJSON(doc any) {
	encoded, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(append(encoded, '\n'))
}

// deltaProblemJSON is one problem of a delta run with its report encoded.
type deltaProblemJSON struct {
	delta.ProblemOutcome
	Report *engine.ReportJSON `json:"report,omitempty"`
}

// deltaRunJSON is the JSON form of one delta.Result.
type deltaRunJSON struct {
	*delta.Result
	Problems []deltaProblemJSON `json:"problems"`
}

func encodeDeltaResult(r *delta.Result) deltaRunJSON {
	out := deltaRunJSON{Result: r}
	for _, p := range r.Problems {
		pj := deltaProblemJSON{ProblemOutcome: p}
		if p.Report != nil {
			enc := engine.EncodeReport(p.Report)
			pj.Report = &enc
		}
		out.Problems = append(out.Problems, pj)
	}
	return out
}

// diffOutput is the -diff -json document.
type diffOutput struct {
	Suite    string       `json:"suite"`
	OK       bool         `json:"ok"`
	Baseline deltaRunJSON `json:"baseline"`
	Update   deltaRunJSON `json:"update"`
	Engine   engine.Stats `json:"engine"`
	Store    *store.Stats `json:"store,omitempty"`
}

// printDelta renders an incremental (delta-vs-baseline) run.
func printDelta(res *plan.Result, c *plan.Compiled, jsonOut bool, st *store.Store) {
	base, upd := res.Baseline, res.Update
	if jsonOut {
		emitJSON(diffOutput{Suite: c.Label(), OK: res.OK,
			Baseline: encodeDeltaResult(base), Update: encodeDeltaResult(upd),
			Engine: res.Engine, Store: res.Store})
		return
	}
	fmt.Println(base)
	if !base.OK {
		fmt.Println("warning: baseline configuration does not verify")
	}
	if upd.Diff != nil {
		fmt.Printf("diff: %s; changed routers: %s\n", upd.Diff, joinIDs(upd.ChangedRouters))
	}
	fmt.Println(upd)
	for _, p := range upd.Problems {
		if p.Report != nil && !p.Report.OK() {
			fmt.Print(p.Report.Summary())
		}
	}
	printEngineSummary(res.Engine)
	printStoreSummary(st)
	switch {
	case res.OK:
		fmt.Println("updated configuration verified incrementally")
	case res.Failures == 0 && res.Unknowns > 0:
		fmt.Printf("%d checks UNKNOWN (solver budget exhausted): properties undecided, not refuted\n", res.Unknowns)
	}
}

func joinIDs(ids []topology.NodeID) string {
	if len(ids) == 0 {
		return "(none)"
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = string(id)
	}
	return strings.Join(parts, ", ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lightyear:", err)
	os.Exit(1)
}

// runMigrate is the -migrate entry point: read the migration plan, apply
// flag overrides, and walk (or search) it on a private engine. Returns the
// process exit code.
func runMigrate(f cliFlags, jsonOut, traceOut bool, logger *slog.Logger) int {
	src, err := os.ReadFile(f.MigratePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lightyear:", err)
		return 1
	}
	var p migrate.Plan
	if err := json.Unmarshal(src, &p); err != nil {
		fmt.Fprintf(os.Stderr, "lightyear: %s: %v\n", f.MigratePath, err)
		return 2
	}
	if f.set("config") {
		p.Network = &plan.Network{ConfigPath: f.ConfigPath}
	}
	if f.set("solver") {
		p.Options.Solver = nil
		if f.Solver != "" {
			spec, err := solver.ParseSpec(f.Solver)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lightyear:", err)
				return 2
			}
			p.Options.Solver = &spec
		}
	}
	if f.set("workers") {
		p.Options.Workers = f.Workers
	}
	if f.set("cache") {
		p.Options.Cache = f.Cache
	}
	if f.set("store") {
		p.Options.Store = f.Store
	}
	if f.set("store-retain") {
		p.Options.StoreRetain = f.StoreRetain
	}
	if f.set("wan-regions") {
		p.Options.WANRegions = f.WANRegions
	}
	if f.set("tenant") {
		p.Options.Tenant = f.Tenant
	}
	weights, err := engine.ParseWeights(f.Weights)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lightyear: -tenant-weights:", err)
		return 2
	}

	var rec *telemetry.Recorder
	var tr *telemetry.Trace
	if traceOut {
		rec = telemetry.New(0)
		tr = rec.StartTrace("cli-migrate", p.Options.Tenant)
	}
	fabric.SetTelemetry(rec)
	fabric.SetLogger(logger)

	c, err := migrate.Compile(p, nil)
	if err != nil {
		var reqErr *plan.RequestError
		if errors.As(err, &reqErr) {
			fmt.Fprintln(os.Stderr, "lightyear:", strings.TrimPrefix(reqErr.Error(), "plan: "))
			return 2
		}
		fmt.Fprintln(os.Stderr, "lightyear:", err)
		return 1
	}
	tr.SetLabel("migrate:" + c.Inner.Label())
	if !jsonOut {
		n := c.Inner.Network
		mode := "ordered"
		if c.Plan.Unordered {
			mode = "unordered (searching for a safe order)"
		}
		fmt.Printf("migration plan: %d steps (%s) over %d routers, %d sessions\n",
			c.NumSteps(), mode, len(n.Routers()), n.NumEdges())
	}

	engOpts := engine.Options{
		Workers:   c.Plan.Options.Workers,
		CacheSize: c.Plan.Options.Cache,
		Telemetry: rec,
		Logger:    logger,
		Admission: engine.Admission{MaxInFlightChecks: f.MaxInflight, Weights: weights},
	}
	var resultStore *store.Store
	if dir := c.Plan.Options.Store; dir != "" {
		resultStore, err = store.OpenOptions(dir, store.Options{MaxFingerprints: c.Plan.Options.StoreRetain})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lightyear:", err)
			return 1
		}
		defer resultStore.Close()
		resultStore.SetTelemetry(rec)
		resultStore.SetLogger(logger)
		engOpts.Cache = resultStore
	}
	eng := engine.New(engOpts)
	defer eng.Close()

	sink := func(migrate.Event) {}
	if !jsonOut {
		sink = printMigrateEvent
	}
	res, err := migrate.Run(context.Background(), eng, c, migrate.RunConfig{
		Sink: sink, Store: resultStore, Recorder: rec, Trace: tr,
	})
	if err != nil {
		var adm *engine.ErrAdmission
		if errors.As(err, &adm) {
			fmt.Fprintf(os.Stderr, "lightyear: %v\n", adm)
			return 1
		}
		fmt.Fprintln(os.Stderr, "lightyear:", err)
		return 1
	}
	if jsonOut {
		emitJSON(res)
	} else {
		printMigrateSummary(res)
		printEngineSummary(eng.Stats())
		printStoreSummary(resultStore)
	}
	if rec != nil {
		if snap, ok := rec.Trace(tr.ID()); ok {
			snap.WriteTree(os.Stderr)
		}
	}
	return migrateExitCode(res)
}

// migrateExitCode maps a migration result onto the exit contract: 0 the
// plan (or found order) is safe end to end, 4 no safe order exists for the
// change set, 3 the walk stopped on an undecided step, 1 it violated.
func migrateExitCode(res *migrate.Result) int {
	switch {
	case res.OK:
		return 0
	case res.Infeasible:
		return 4
	case res.Undecided:
		return 3
	default:
		return 1
	}
}

// printMigrateEvent renders the progress stream in human mode, one line per
// verified state plus the failing checks of violated ones.
func printMigrateEvent(ev migrate.Event) {
	prefix := ""
	if ev.Search {
		prefix = "search: "
	}
	switch ev.Type {
	case migrate.EvBaseline:
		if ev.Checks > 0 {
			fmt.Printf("baseline: %d checks, %d solved, ok=%v\n", ev.Checks, ev.Solved, ev.OK)
		} else {
			fmt.Printf("baseline: pinned session state (%d retained results)\n", ev.Reused)
		}
	case migrate.EvStepOK:
		if ev.Unchanged {
			fmt.Printf("%sstep %d (%s): ok [no-op: source unchanged]\n", prefix, ev.Step, ev.Label)
			return
		}
		fmt.Printf("%sstep %d (%s): ok — %d checks, %d dirty, %d reused, %d solved\n",
			prefix, ev.Step, ev.Label, ev.Checks, ev.Dirty, ev.Reused, ev.Solved)
	case migrate.EvStepViolated:
		reason := ev.Reason
		if reason == "" {
			reason = fmt.Sprintf("%d failing checks", ev.Checks)
		}
		fmt.Printf("%sstep %d (%s): VIOLATED — %s\n", prefix, ev.Step, ev.Label, reason)
	case migrate.EvCheck:
		fmt.Printf("%s  %s [%s] %s\n", prefix, strings.ToUpper(ev.Status), ev.Problem, ev.Check)
		if ev.Witness != "" {
			for _, line := range strings.Split(ev.Witness, "\n") {
				fmt.Printf("%s    %s\n", prefix, line)
			}
		}
	case migrate.EvOrderFound:
		fmt.Printf("safe order found after %d states: %s\n", ev.States, strings.Join(ev.Labels, " -> "))
	case migrate.EvOrderInfeasible:
		fmt.Printf("no safe order (%d states explored): %s\n", ev.States, ev.Reason)
	}
}

// printMigrateSummary renders the final verdict and the per-step delta-reuse
// accounting.
func printMigrateSummary(res *migrate.Result) {
	switch {
	case res.OK && !res.Ordered:
		fmt.Printf("migration plan verified: safe order %s (%d states verified, %d memo hits, %d orders pruned)\n",
			strings.Join(res.OrderLabels, " -> "), res.SearchStates, res.MemoHits, res.PrunedOrders)
	case res.OK:
		fmt.Printf("migration plan verified: %d steps, every intermediate state holds\n", len(res.Steps))
	case res.Infeasible:
		fmt.Printf("migration plan INFEASIBLE: %s\n", res.Reason)
		if ex := res.Explanation; ex != nil {
			if len(ex.SafePrefix) > 0 {
				fmt.Printf("  longest safe prefix: %s\n", strings.Join(ex.PrefixLabels, " -> "))
			}
			for _, b := range ex.Blocked {
				fmt.Printf("  blocked: %s — %s\n", b.Label, b.Reason)
			}
		}
	case res.Undecided:
		fmt.Printf("migration plan UNDECIDED at step %d (%s): %s\n", res.ViolatedStep, res.ViolatedLabel, res.Reason)
	default:
		fmt.Printf("migration plan VIOLATED at step %d (%s): %s\n", res.ViolatedStep, res.ViolatedLabel, res.Reason)
	}
}
