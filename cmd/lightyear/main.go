// Command lightyear verifies BGP control-plane properties of a network
// configuration using modular local checks.
//
// Usage:
//
//	lightyear -config net.cfg -property fig1-no-transit [-workers N] [-verbose]
//
// The configuration file uses the DSL of internal/config (see cmd/lygen to
// generate examples). Properties, like the local invariants of the paper's
// deployment, are defined in code; the built-in property suites are:
//
//	fig1-no-transit   Table 2: routes from ISP1 never reach ISP2
//	fig1-liveness     Table 3: customer prefixes reach ISP2
//	fullmesh          §6.2: no-transit on a generated full mesh
//	wan-peering       Table 4a: the 11 peering properties at every router
//	wan-ip-reuse      Table 4b: regional reused-IP isolation
//	wan-ip-liveness   Table 4c: reused routes propagate within each region
package main

import (
	"flag"
	"fmt"
	"os"

	"lightyear/internal/config"
	"lightyear/internal/core"
	"lightyear/internal/netgen"
)

func main() {
	var (
		configPath = flag.String("config", "", "path to the network configuration file")
		property   = flag.String("property", "fig1-no-transit", "property suite to verify")
		workers    = flag.Int("workers", 0, "parallel check workers (0 = GOMAXPROCS)")
		verbose    = flag.Bool("verbose", false, "print every check result")
		regions    = flag.Int("wan-regions", 3, "region count assumed for WAN properties")
	)
	flag.Parse()

	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "lightyear: -config is required (generate one with lygen)")
		os.Exit(2)
	}
	src, err := os.ReadFile(*configPath)
	if err != nil {
		fatal(err)
	}
	n, err := config.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("parsed %s: %d routers, %d externals, %d sessions\n",
		*configPath, len(n.Routers()), len(n.Externals()), n.NumEdges())

	opts := core.Options{Workers: *workers}
	ok := true
	switch *property {
	case "fig1-no-transit":
		ok = runSafety(netgen.Fig1NoTransitProblem(n), opts, *verbose)
	case "fig1-liveness":
		ok = runLiveness(netgen.Fig1LivenessProblem(n), opts, *verbose)
	case "fullmesh":
		ok = runSafety(netgen.FullMeshProblem(n), opts, *verbose)
	case "wan-peering":
		for _, prop := range netgen.PeeringProperties(*regions) {
			for _, r := range n.Routers() {
				if !runSafety(netgen.PeeringProblem(n, r, prop), opts, *verbose) {
					ok = false
				}
			}
		}
	case "wan-ip-reuse":
		p := netgen.WANParams{Regions: *regions}
		for r := 0; r < *regions; r++ {
			region := fmt.Sprintf("region-%d", r)
			for _, out := range n.Routers() {
				if n.Node(out).Region == region {
					continue
				}
				if !runSafety(netgen.IPReuseSafetyProblem(n, p, r, out), opts, *verbose) {
					ok = false
				}
			}
		}
	case "wan-ip-liveness":
		p := netgen.WANParams{Regions: *regions}
		for r := 0; r < *regions; r++ {
			prob := netgen.IPReuseLivenessProblem(n, p, r)
			if !runLivenessChecked(prob, opts, *verbose) {
				ok = false
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "lightyear: unknown property %q\n", *property)
		os.Exit(2)
	}
	if !ok {
		os.Exit(1)
	}
	fmt.Println("all properties verified")
}

func runSafety(p *core.SafetyProblem, opts core.Options, verbose bool) bool {
	rep := core.VerifySafety(p, opts)
	printReport(rep, verbose)
	return rep.OK()
}

func runLiveness(p *core.LivenessProblem, opts core.Options, verbose bool) bool {
	rep, err := core.VerifyLiveness(p, opts)
	if err != nil {
		fatal(err)
	}
	printReport(rep, verbose)
	return rep.OK()
}

func runLivenessChecked(p *core.LivenessProblem, opts core.Options, verbose bool) bool {
	// WAN liveness paths reference generated router names; skip regions the
	// parsed config does not contain.
	if err := p.Validate(); err != nil {
		fmt.Printf("skip: %v\n", err)
		return true
	}
	return runLiveness(p, opts, verbose)
}

func printReport(rep *core.Report, verbose bool) {
	if verbose {
		for _, r := range rep.Results {
			status := "PASS"
			if !r.OK {
				status = "FAIL"
			}
			fmt.Printf("  %s [%s] %s (%d vars, %d clauses, solve %v)\n",
				status, r.Kind, r.Desc, r.NumVars, r.NumCons, r.SolveTime)
		}
	}
	fmt.Print(rep.Summary())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lightyear:", err)
	os.Exit(1)
}
