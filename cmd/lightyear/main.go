// Command lightyear verifies BGP control-plane properties of a network
// configuration using modular local checks.
//
// Usage:
//
//	lightyear -config net.cfg -property fig1-no-transit [-workers N] [-cache N] [-json] [-verbose]
//
// The configuration file uses the DSL of internal/config (see cmd/lygen to
// generate examples). Properties, like the local invariants of the paper's
// deployment, are defined in code and registered in the internal/netgen
// suite registry; the built-in property suites are:
//
//	fig1-no-transit   Table 2: routes from ISP1 never reach ISP2
//	fig1-liveness     Table 3: customer prefixes reach ISP2
//	fullmesh          §6.2: no-transit on a generated full mesh
//	wan-peering       Table 4a: the 11 peering properties at every router
//	wan-ip-reuse      Table 4b: regional reused-IP isolation
//	wan-ip-liveness   Table 4c: reused routes propagate within each region
//
// All problems of the selected suite run as concurrent jobs on a shared
// internal/engine Engine, so identical local checks across the suite's
// properties and routers are solved once and served from the engine's
// result cache thereafter. -workers sizes the engine's worker pool and
// -cache its LRU result-cache capacity (0 = engine default, negative
// disables caching).
//
// With -json, the command emits a single machine-readable JSON document on
// stdout (the same report encoding the lyserve HTTP API returns) instead of
// the human-readable summary.
//
// Exit status contract:
//
//	0  every problem in the suite verified (skipped optional problems allowed)
//	1  at least one local check failed, or verification could not run
//	   (unreadable or unparsable configuration, invalid liveness path)
//	2  usage error (missing -config, unknown -property suite)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"lightyear/internal/config"
	"lightyear/internal/core"
	"lightyear/internal/engine"
	"lightyear/internal/netgen"
)

// problemOutcome is the per-problem record of a suite run, shared by the
// human-readable and -json output paths.
type problemOutcome struct {
	Name       string             `json:"name"`
	Skipped    bool               `json:"skipped,omitempty"`
	SkipReason string             `json:"skip_reason,omitempty"`
	Report     *engine.ReportJSON `json:"report,omitempty"`
	Stats      *engine.JobStats   `json:"stats,omitempty"`

	report *core.Report
}

// runOutput is the -json document: per-problem reports plus engine-level
// dedup/cache statistics.
type runOutput struct {
	Suite    string           `json:"suite"`
	OK       bool             `json:"ok"`
	Problems []problemOutcome `json:"problems"`
	Engine   engine.Stats     `json:"engine"`
}

func main() {
	var (
		configPath = flag.String("config", "", "path to the network configuration file")
		property   = flag.String("property", "fig1-no-transit", "property suite to verify")
		workers    = flag.Int("workers", 0, "parallel check workers (0 = GOMAXPROCS)")
		cacheSize  = flag.Int("cache", 0, "engine result-cache capacity (0 = default, <0 disables)")
		jsonOut    = flag.Bool("json", false, "emit the report as machine-readable JSON")
		verbose    = flag.Bool("verbose", false, "print every check result")
		regions    = flag.Int("wan-regions", 3, "region count assumed for WAN properties")
	)
	flag.Parse()

	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "lightyear: -config is required (generate one with lygen)")
		os.Exit(2)
	}
	suite, ok := netgen.Lookup(*property)
	if !ok {
		fmt.Fprintf(os.Stderr, "lightyear: unknown property %q (have: %s)\n",
			*property, strings.Join(netgen.SuiteNames(), ", "))
		os.Exit(2)
	}

	src, err := os.ReadFile(*configPath)
	if err != nil {
		fatal(err)
	}
	n, err := config.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	if !*jsonOut {
		fmt.Printf("parsed %s: %d routers, %d externals, %d sessions\n",
			*configPath, len(n.Routers()), len(n.Externals()), n.NumEdges())
	}

	eng := engine.New(engine.Options{Workers: *workers, CacheSize: *cacheSize})
	defer eng.Close()

	problems := suite.Build(n, netgen.SuiteParams{Regions: *regions})
	outcomes := make([]problemOutcome, len(problems))
	jobs := make([]*engine.Job, len(problems))

	// Submit every problem before collecting any, so the engine dedups
	// identical checks across the whole suite.
	for i, p := range problems {
		outcomes[i].Name = p.Name
		switch {
		case p.Safety != nil:
			jobs[i] = eng.SubmitSafety(p.Safety)
		case p.Liveness != nil:
			job, err := eng.SubmitLiveness(p.Liveness)
			if err != nil {
				if p.Optional {
					// e.g. a WAN region path absent from this config.
					outcomes[i].Skipped = true
					outcomes[i].SkipReason = err.Error()
					continue
				}
				fatal(err)
			}
			jobs[i] = job
		}
	}

	allOK := true
	for i := range problems {
		if jobs[i] == nil {
			if !*jsonOut && outcomes[i].Skipped {
				fmt.Printf("skip %s: %s\n", outcomes[i].Name, outcomes[i].SkipReason)
			}
			continue
		}
		rep := jobs[i].Wait()
		st := jobs[i].Stats()
		outcomes[i].report = rep
		outcomes[i].Stats = &st
		if !rep.OK() {
			allOK = false
		}
		if !*jsonOut {
			printReport(rep, *verbose)
		}
	}

	if *jsonOut {
		out := runOutput{Suite: suite.Name, OK: allOK, Problems: outcomes, Engine: eng.Stats()}
		for i := range out.Problems {
			if r := out.Problems[i].report; r != nil {
				enc := engine.EncodeReport(r)
				out.Problems[i].Report = &enc
			}
		}
		encoded, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(append(encoded, '\n'))
	} else {
		st := eng.Stats()
		fmt.Printf("engine: %d checks submitted, %d solved, %d cache hits, %d dedup hits\n",
			st.ChecksSubmitted, st.ChecksSolved, st.CacheHits, st.DedupHits)
	}

	if !allOK {
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Println("all properties verified")
	}
}

func printReport(rep *core.Report, verbose bool) {
	if verbose {
		for _, r := range rep.Results {
			status := "PASS"
			if !r.OK {
				status = "FAIL"
			}
			fmt.Printf("  %s [%s] %s (%d vars, %d clauses, solve %v)\n",
				status, r.Kind, r.Desc, r.NumVars, r.NumCons, r.SolveTime)
		}
	}
	fmt.Print(rep.Summary())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lightyear:", err)
	os.Exit(1)
}
